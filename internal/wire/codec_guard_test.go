package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// declaredTypes parses the package's own source and returns every
// declared wire.Type constant (name → string value). Walking the source
// rather than a hand-kept list means a newly added Type cannot dodge the
// guard by omission.
func declaredTypes(t *testing.T) map[string]Type {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]Type)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				ident, ok := vs.Type.(*ast.Ident)
				if !ok || ident.Name != "Type" {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					v, err := strconv.Unquote(lit.Value)
					if err != nil {
						t.Fatal(err)
					}
					out[name.Name] = Type(v)
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("found no declared Type constants — parser walk broken?")
	}
	return out
}

// TestBinaryCodecExhaustive is the guard of the binary codec's coverage:
// every declared wire.Type must have a stable 1-byte wire ID (else its
// messages cross binary connections with the costlier string-typed
// envelope), and every type on the hot list must have a registered
// binary body codec. Adding a Type therefore forces a deliberate
// hot-or-fallback decision here.
func TestBinaryCodecExhaustive(t *testing.T) {
	declared := declaredTypes(t)

	// Every declared type carries a compact ID.
	for name, typ := range declared {
		if _, ok := typeIDs[typ]; !ok {
			t.Errorf("%s (%q) has no binary type ID — assign the next free ID in typeIDs (append-only)", name, typ)
		}
	}
	// No ID maps to an undeclared type, and IDs are collision-free.
	byVal := make(map[Type]bool, len(declared))
	for _, typ := range declared {
		byVal[typ] = true
	}
	for typ := range typeIDs {
		if !byVal[typ] {
			t.Errorf("typeIDs entry %q does not correspond to a declared Type constant", typ)
		}
	}
	if len(idTypes) != len(typeIDs) {
		t.Errorf("typeIDs assigns %d types but only %d distinct IDs — two types share an ID", len(typeIDs), len(idTypes))
	}

	// The hot path of the paper's workload: queries and their results,
	// liveness probes, and the §4.3 recovery vocabulary. Each must have a
	// registered binary body codec (possibly the bodyless one).
	hot := []Type{
		TypeQuery, TypeQueryResult,
		TypeProbe, TypeProbeResult,
		TypeChildSample, TypeChildSampleResult,
		TypeNotifyCCW, TypeNotifyCCWResult,
		TypeRepair, TypeRepairResult,
		TypeError,
	}
	for _, typ := range hot {
		bc, ok := bodyCodecs[typ]
		if !ok {
			t.Errorf("hot type %q has no registered binary body codec", typ)
			continue
		}
		// enc and dec come in pairs: both set (typed body) or both nil
		// (registered bodyless type).
		if (bc.enc == nil) != (bc.dec == nil) {
			t.Errorf("hot type %q registers enc=%v dec=%v — must be both or neither", typ, bc.enc != nil, bc.dec != nil)
		}
	}
	// HotTypes mirrors the registration map for external checks.
	if got := HotTypes(); len(got) != len(bodyCodecs) {
		t.Errorf("HotTypes() returned %d types, registry has %d", len(got), len(bodyCodecs))
	}
}
