package wire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// codecSampleMessages is one representative typed message per hot type
// plus cold-type and legacy-payload shapes, shared by the round-trip
// tests and the seed corpus.
func codecSampleMessages() []Message {
	return []Message{
		Typed(TypeQuery, &Query{
			Target: "n2-1.n1-0", Mode: ModeHierarchical, Hops: 3, TTL: 12,
			Path: []string{".", "n1-0"}, Trace: true,
			HopTrace: []HopRecord{
				{Node: ".", Index: -1, Mode: ModeHierarchical, DurationMicros: 41},
				{Node: "n1-0", Index: 2, Mode: ModeForward},
			},
		}),
		Typed(TypeQueryResult, &QueryResult{
			Found: true, Answer: "10.0.0.7", Hops: 4,
			Path:     []string{".", "n1-0", "n2-1.n1-0"},
			HopTrace: []HopRecord{{Node: "n2-1.n1-0", Index: 0, Mode: ModeNephew, DurationMicros: 9}},
		}),
		Typed(TypeQueryResult, &QueryResult{Reason: "ttl exhausted", Cached: true}),
		{Type: TypeProbe},
		{Type: TypeProbeResult},
		Typed(TypeChildSample, &ChildSample{Count: 4}),
		Typed(TypeChildSampleResult, &ChildSampleResult{Children: []Peer{
			{Index: 0, Name: "n2-0.n1-1", Addr: "127.0.0.1:7103"},
			{Index: 3, Name: "n2-3.n1-1", Addr: "127.0.0.1:7107"},
		}}),
		Typed(TypeNotifyCCW, &NotifyCCW{Index: 5, Name: "n1-5", Addr: "127.0.0.1:7005"}),
		{Type: TypeNotifyCCWResult},
		Typed(TypeRepair, &Repair{OriginIndex: 2, OriginName: "n1-2", OriginAddr: "127.0.0.1:7002", Hops: 1, TTL: 8}),
		{Type: TypeRepairResult},
		Typed(TypeError, &Error{Reason: "shed", Code: ErrCodeOverloaded, RetryAfterMillis: 25}),
		// Envelope fields ride every codec.
		{Type: TypeQuery, From: "client-7", DL: 1234,
			Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)},
		// Cold types fall back to JSON bodies inside the binary envelope.
		Typed(TypeJoin, &Join{Label: "n2-9", Addr: "127.0.0.1:7210"}),
		Typed(TypeResolveResult, &ResolveResult{Peers: []Peer{{Index: 1, Name: "n1-1", Addr: "127.0.0.1:7001"}}}),
		// Legacy eager messages: raw payload bytes, no typed body.
		{Type: TypeTableInfo, Payload: []byte(`{"name":"n2-1.n1-0"}`)},
		{Type: TypeStats},
	}
}

// decodedEqual compares two messages by what a receiver can observe:
// type, envelope fields, and the payload decoded into its Go value (a
// typed body and its JSON encoding are the same message).
func decodedEqual(t *testing.T, a, b Message) bool {
	t.Helper()
	if a.Type != b.Type || a.From != b.From || a.DL != b.DL || a.TC != b.TC {
		return false
	}
	var av, bv any
	if err := a.Decode(&av); err != nil {
		av = nil
	}
	if err := b.Decode(&bv); err != nil {
		bv = nil
	}
	// Normalize both through JSON: typed bodies vs raw payload bytes.
	aj, _ := json.Marshal(av)
	bj, _ := json.Marshal(bv)
	return bytes.Equal(aj, bj)
}

// TestCodecRoundTrip pins that every sample message survives both codecs
// and that the two decode to the same observable message.
func TestCodecRoundTrip(t *testing.T) {
	for _, m := range codecSampleMessages() {
		for _, c := range []Codec{JSON, Binary} {
			enc, err := c.AppendMessage(nil, m)
			if err != nil {
				t.Fatalf("%s %s: encode: %v", c.Name(), m.Type, err)
			}
			got, err := c.DecodeMessage(enc)
			if err != nil {
				t.Fatalf("%s %s: decode: %v", c.Name(), m.Type, err)
			}
			if !decodedEqual(t, m, got) {
				t.Errorf("%s %s: round trip changed the message:\n in: %+v\nout: %+v", c.Name(), m.Type, m, got)
			}
		}
	}
}

// TestCodecDifferential pins binary and JSON to identical observable
// decodes for every sample message — the invariant FuzzCodecRoundTrip
// extends to arbitrary inputs.
func TestCodecDifferential(t *testing.T) {
	for _, m := range codecSampleMessages() {
		je, err := JSON.AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("json encode %s: %v", m.Type, err)
		}
		be, err := Binary.AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("binary encode %s: %v", m.Type, err)
		}
		jm, err := JSON.DecodeMessage(je)
		if err != nil {
			t.Fatalf("json decode %s: %v", m.Type, err)
		}
		bm, err := Binary.DecodeMessage(be)
		if err != nil {
			t.Fatalf("binary decode %s: %v", m.Type, err)
		}
		if !decodedEqual(t, jm, bm) {
			t.Errorf("%s: codecs disagree:\njson:   %+v\nbinary: %+v", m.Type, jm, bm)
		}
	}
}

// TestBinaryEnvelopeFields pins the envelope fields (From, TC, DL) through
// the binary codec, including the insurance bits the mux layer normally
// strips into frame prefixes.
func TestBinaryEnvelopeFields(t *testing.T) {
	m := Typed(TypeQuery, &Query{Target: "x.y", Mode: ModeForward, TTL: 3})
	m.From = "client-9"
	m.TC = TraceContext{TraceID: 0xfeed, SpanID: 0xbeef, Flags: 1}
	m.DL = 950
	enc, err := Binary.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Binary.DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.TC != m.TC || got.DL != m.DL {
		t.Errorf("envelope fields lost: got from=%q tc=%+v dl=%d", got.From, got.TC, got.DL)
	}
	var q Query
	if err := got.Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Target != "x.y" || q.Mode != ModeForward || q.TTL != 3 {
		t.Errorf("body lost: %+v", q)
	}
}

// TestBinaryUnknownTypeString pins that a Type with no registered ID
// still crosses a binary connection (string-typed envelope) — forward
// compatibility with vocabulary added by newer builds.
func TestBinaryUnknownTypeString(t *testing.T) {
	m := Message{Type: Type("future_thing"), Payload: []byte(`{"x":1}`)}
	enc, err := Binary.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Binary.DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip changed the message: %+v", got)
	}
}

// TestBinaryLegacyPayloadFallback pins that an eagerly built wire.New
// message — raw JSON payload, no typed body — rides a binary connection
// unchanged: the envelope carries the payload bytes with the typed-body
// flag clear.
func TestBinaryLegacyPayloadFallback(t *testing.T) {
	m, err := New(TypeQuery, Query{Target: "a.b", Mode: ModeBackward, TTL: 7})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Binary.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Binary.DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	var q Query
	if err := got.Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Target != "a.b" || q.Mode != ModeBackward || q.TTL != 7 {
		t.Errorf("legacy payload lost: %+v", q)
	}
}

// TestBinaryMismatchedBodyFallsBackToJSON pins that a Typed message whose
// body does not match its type's registered codec still encodes (JSON
// body inside the binary envelope) rather than failing or corrupting.
func TestBinaryMismatchedBodyFallsBackToJSON(t *testing.T) {
	m := Typed(TypeQuery, &Error{Reason: "wrong body"}) // deliberate mismatch
	enc, err := Binary.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Binary.DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	var e Error
	if err := got.Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Reason != "wrong body" {
		t.Errorf("fallback body lost: %+v", e)
	}
}

// TestBinaryDecodeRejectsGarbage pins the decoder errors (never panics)
// on truncated and trailing-byte inputs.
func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	valid, err := Binary.AppendMessage(nil, Typed(TypeQuery, &Query{Target: "a.b", TTL: 2}))
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{},
		valid[:1],
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0xff),
		{binTypedBody, 99}, // unknown type id
	}
	for _, b := range cases {
		if _, err := Binary.DecodeMessage(b); err == nil {
			t.Errorf("decode(%x) accepted garbage", b)
		}
	}
}

// TestDecodeClonesUnownedSlices pins the Mem-transport aliasing rule: a
// handler decoding a sender-built Typed message gets its own copy of the
// slices, so mutating them cannot race the sender.
func TestDecodeClonesUnownedSlices(t *testing.T) {
	orig := &Query{Target: "a.b", Path: []string{"."}, HopTrace: []HopRecord{{Node: "."}}}
	m := Typed(TypeQuery, orig)
	var q Query
	if err := m.Decode(&q); err != nil {
		t.Fatal(err)
	}
	q.Path[0] = "mutated"
	q.HopTrace[0].Node = "mutated"
	if orig.Path[0] != "." || orig.HopTrace[0].Node != "." {
		t.Error("decoded slices alias the sender's body")
	}
	// Wire-decoded bodies are owned and assign shallowly (no clone): pin
	// that Decode still yields the right values.
	enc, err := Binary.AppendMessage(nil, Typed(TypeQuery, orig))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Binary.DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	var q2 Query
	if err := got.Decode(&q2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q2.Path, orig.Path) {
		t.Errorf("owned decode path = %v, want %v", q2.Path, orig.Path)
	}
}

// TestCodecByName pins the flag-value mapping.
func TestCodecByName(t *testing.T) {
	for name, want := range map[string]Codec{"": Binary, "binary": Binary, "json": JSON} {
		c, err := CodecByName(name)
		if err != nil || c != want {
			t.Errorf("CodecByName(%q) = %v, %v; want %v", name, c, err, want)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Error("CodecByName accepted an unknown name")
	}
}

// TestEncodeQueryZeroAllocs pins the hot-path claim: encoding a typed
// query body into a pre-sized buffer allocates nothing.
func TestEncodeQueryZeroAllocs(t *testing.T) {
	q := &Query{
		Target: "n2-1.n1-0", Mode: ModeHierarchical, Hops: 3, TTL: 12,
		Path: []string{".", "n1-0"},
	}
	m := Typed(TypeQuery, q)
	dst := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = Binary.AppendMessage(dst[:0], m)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Binary.AppendMessage(query) allocates %.1f/op, want 0", allocs)
	}
}

// TestEncodeQueryResultZeroAllocs extends the zero-alloc pin to the
// response side of the hot exchange.
func TestEncodeQueryResultZeroAllocs(t *testing.T) {
	r := &QueryResult{Found: true, Answer: "10.0.0.7", Hops: 4, Path: []string{".", "n1-0"}}
	m := Typed(TypeQueryResult, r)
	dst := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = Binary.AppendMessage(dst[:0], m)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Binary.AppendMessage(query_result) allocates %.1f/op, want 0", allocs)
	}
}

// TestAppendMuxFrameBinaryZeroAllocs pins the whole frame encode — header,
// prefixes, envelope, body — at zero allocations into a warm buffer, the
// exact per-request cost of the coalesced write path.
func TestAppendMuxFrameBinaryZeroAllocs(t *testing.T) {
	q := &Query{Target: "n2-1.n1-0", Mode: ModeHierarchical, TTL: 12}
	m := Typed(TypeQuery, q)
	m.DL = 500
	dst := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = AppendMuxFrameCodec(dst[:0], FrameRequest, 7, m, Binary)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMuxFrameCodec(binary query) allocates %.1f/op, want 0", allocs)
	}
}
