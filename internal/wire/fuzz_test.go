package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzReadFrame hardens the frame decoder against arbitrary byte streams:
// it must never panic and must round-trip anything it accepts.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames of each message type plus mutations.
	seedMsgs := []Message{
		{Type: TypeProbe},
		{Type: TypeQuery, Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)},
		{Type: TypeError, Payload: []byte(`{"reason":"x"}`)},
		{Type: TypeQuery, Payload: []byte(`{"target":"a.b","mode":"nephew","ttl":9,"trace":true,` +
			`"hopTrace":[{"node":".","index":-1,"mode":"hierarchical","durationMicros":12}]}`)},
		{Type: TypeStatsResult, Payload: []byte(`{"name":"a","metrics":{"counters":{"q_total":3},` +
			`"histograms":{"h_seconds":{"count":1,"sumNanos":1000,"bounds":[0.001],"counts":[1,0]}}}}`)},
		// Envelope fields added for overload protection: the caller's
		// admission identity and the propagated deadline budget.
		{Type: TypeQuery, From: "client-7", DL: 1234,
			Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)},
		{Type: TypeError, From: "n2", DL: 1,
			Payload: []byte(`{"reason":"overloaded","code":"overloaded","retryAfterMillis":25}`)},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	f.Add(hdr[:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Anything accepted must re-encode and decode to the same frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m2.Type != m.Type || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", m, m2)
		}
		if m2.From != m.From || m2.DL != m.DL {
			t.Fatalf("envelope round trip mismatch: from=%q dl=%d vs from=%q dl=%d",
				m.From, m.DL, m2.From, m2.DL)
		}
	})
}

// FuzzCoalescer pins the batching invariant: a run of frames pushed
// through the write coalescer must produce the exact byte stream of the
// same frames written one Write per frame — whatever the payloads,
// envelope fields, or flush boundaries — so a peer cannot tell batched
// and unbatched senders apart.
func FuzzCoalescer(f *testing.F) {
	f.Add("a.b", "client-1", int64(0), uint(3), uint8(1))
	f.Add("deep.le.vel.chain", "", int64(1234), uint(17), uint8(4))
	f.Add("", "x", int64(-5), uint(1), uint8(0))
	f.Add("victim.zone", "aggressor", int64(1<<40), uint(40), uint8(2))

	f.Fuzz(func(t *testing.T, target, from string, dl int64, n uint, spread uint8) {
		frames := int(n%64) + 1
		msgs := make([]Message, frames)
		for i := range msgs {
			m, err := New(TypeQuery, Query{Target: target, TTL: i})
			if err != nil {
				t.Skip()
			}
			if i%2 == 0 {
				m.From = from
			}
			if int(spread) > 0 && i%int(spread) == 0 {
				m.DL = dl
			}
			msgs[i] = m
		}

		var direct bytes.Buffer
		for i, m := range msgs {
			if err := WriteMuxFrame(&direct, FrameRequest, uint64(i), m); err != nil {
				t.Skip() // unencodable input rejected identically either way
			}
		}

		w := &collectWriter{}
		co := NewCoalescer(CoalescerConfig{
			Write:     w.write,
			MaxBytes:  512, // small bound: force mid-run flush boundaries
			MaxLinger: 50 * time.Microsecond,
			Inflight:  func() int { return frames },
		})
		go co.Run()
		for i, m := range msgs {
			if err := co.WriteMuxFrame(FrameRequest, uint64(i), m); err != nil {
				t.Fatalf("coalesced write %d: %v", i, err)
			}
		}
		if err := co.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.stream(), direct.Bytes()) {
			t.Fatalf("coalesced stream differs from direct stream (%d vs %d bytes)",
				len(w.stream()), len(direct.Bytes()))
		}
		r := bytes.NewReader(w.stream())
		var scratch []byte
		for i := range msgs {
			var m Message
			var err error
			_, _, m, scratch, err = ReadMuxFrameBuffer(r, scratch)
			if err != nil {
				t.Fatalf("decode frame %d of coalesced stream: %v", i, err)
			}
			if m.Type != TypeQuery {
				t.Fatalf("frame %d decoded type %q", i, m.Type)
			}
		}
	})
}
