package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hardens the frame decoder against arbitrary byte streams:
// it must never panic and must round-trip anything it accepts.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames of each message type plus mutations.
	seedMsgs := []Message{
		{Type: TypeProbe},
		{Type: TypeQuery, Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)},
		{Type: TypeError, Payload: []byte(`{"reason":"x"}`)},
		{Type: TypeQuery, Payload: []byte(`{"target":"a.b","mode":"nephew","ttl":9,"trace":true,` +
			`"hopTrace":[{"node":".","index":-1,"mode":"hierarchical","durationMicros":12}]}`)},
		{Type: TypeStatsResult, Payload: []byte(`{"name":"a","metrics":{"counters":{"q_total":3},` +
			`"histograms":{"h_seconds":{"count":1,"sumNanos":1000,"bounds":[0.001],"counts":[1,0]}}}}`)},
		// Envelope fields added for overload protection: the caller's
		// admission identity and the propagated deadline budget.
		{Type: TypeQuery, From: "client-7", DL: 1234,
			Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)},
		{Type: TypeError, From: "n2", DL: 1,
			Payload: []byte(`{"reason":"overloaded","code":"overloaded","retryAfterMillis":25}`)},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	f.Add(hdr[:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Anything accepted must re-encode and decode to the same frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m2.Type != m.Type || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", m, m2)
		}
		if m2.From != m.From || m2.DL != m.DL {
			t.Fatalf("envelope round trip mismatch: from=%q dl=%d vs from=%q dl=%d",
				m.From, m.DL, m2.From, m2.DL)
		}
	})
}
