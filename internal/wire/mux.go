package wire

// Multiplexed framing (wire version 2).
//
// The original (version 1) framing carries one length-prefixed message per
// direction per connection: [len:4][json]. Version 2 multiplexes many
// concurrent exchanges over one persistent connection by tagging every
// frame with a kind and a request ID:
//
//	preface   [magic:4 = "HRS2"][version:1]        (client → server)
//	ack       [magic:4 = "HRS2"][version:1]        (server → client)
//	frame     [kind:1][id:8][len:4][json body]     (both directions)
//
// Version negotiation exploits the v1 length prefix: the magic, read as a
// big-endian uint32 length, exceeds maxFrame, so a v1 server rejects the
// preface instantly and closes the connection — the client falls back to
// one-shot framing. Conversely a v2 server sniffs the first four bytes of
// every accepted connection: the magic selects the mux protocol, anything
// else is a v1 length prefix and the connection is served one-shot. Old
// and new peers therefore interoperate without configuration.

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MuxMagic opens every multiplexed connection ("HRS2" big-endian). Its
// numeric value (0x48525332) is far above maxFrame, so a v1 peer reading
// it as a frame length fails immediately instead of waiting for a body.
const MuxMagic uint32 = 0x48525332

// MuxVersion is the multiplexed protocol version spoken by this build.
const MuxVersion byte = 2

// MuxMagicBinary opens a multiplexed connection whose frame bodies use
// the binary codec ("HRS3" big-endian). Like MuxMagic it exceeds
// maxFrame, so a v1 peer rejects it instantly; an HRS2-only peer fails
// its magic check and closes, which the dialer treats as "no binary
// here" and redials with the HRS2 preface (sticky per addr — see the
// transport's downgrade ladder).
const MuxMagicBinary uint32 = 0x48525333

// MuxVersionBinary is the protocol version carried by the HRS3 preface.
const MuxVersionBinary byte = 3

// FrameKind tags one multiplexed frame.
type FrameKind byte

const (
	// FrameRequest carries a request message; the peer answers with a
	// FrameResponse bearing the same ID.
	FrameRequest FrameKind = 1
	// FrameResponse carries the response to the same-ID request.
	FrameResponse FrameKind = 2
	// FrameGoAway tells the peer the sender is about to close the
	// connection: stop issuing new requests on it. It carries no body and
	// ID 0.
	FrameGoAway FrameKind = 3
	// FrameRequestTraced is a request carrying a distributed-tracing
	// context: its body is [trace context:17][json] instead of bare JSON.
	// WriteMuxFrame upgrades FrameRequest to this kind automatically when
	// the message holds a context, and ReadMuxFrame normalizes it back to
	// FrameRequest with Message.TC restored, so transports never see it.
	FrameRequestTraced FrameKind = 4
	// FrameRequestDeadline is a request carrying a propagated deadline
	// budget: its body is [deadline millis:4][json]. Like the trace
	// context, WriteMuxFrame upgrades FrameRequest automatically when the
	// message carries a deadline and ReadMuxFrame normalizes it back with
	// Message.DL restored.
	FrameRequestDeadline FrameKind = 5
	// FrameRequestTracedDeadline carries both binary prefixes:
	// [trace context:17][deadline millis:4][json].
	FrameRequestTracedDeadline FrameKind = 6
)

// valid reports whether the kind is one this build understands.
func (k FrameKind) valid() bool {
	return k == FrameRequest || k == FrameResponse || k == FrameGoAway ||
		k == FrameRequestTraced || k == FrameRequestDeadline ||
		k == FrameRequestTracedDeadline
}

// isRequest reports whether the kind is any request variant.
func (k FrameKind) isRequest() bool {
	return k == FrameRequest || k == FrameRequestTraced ||
		k == FrameRequestDeadline || k == FrameRequestTracedDeadline
}

// requestKind picks the request frame kind for the binary prefixes the
// message needs.
func requestKind(traced, deadline bool) FrameKind {
	switch {
	case traced && deadline:
		return FrameRequestTracedDeadline
	case traced:
		return FrameRequestTraced
	case deadline:
		return FrameRequestDeadline
	default:
		return FrameRequest
	}
}

// String renders the kind for errors and logs.
func (k FrameKind) String() string {
	switch k {
	case FrameRequest:
		return "request"
	case FrameResponse:
		return "response"
	case FrameGoAway:
		return "goaway"
	case FrameRequestTraced:
		return "request_traced"
	case FrameRequestDeadline:
		return "request_deadline"
	case FrameRequestTracedDeadline:
		return "request_traced_deadline"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// helloLen is the size of the preface/ack: magic plus version.
const helloLen = 5

// WriteHello writes the HRS2 mux preface (client side) or ack (server
// side).
func WriteHello(w io.Writer) error {
	return WriteHelloMagic(w, MuxMagic, MuxVersion)
}

// WriteHelloMagic writes a preface/ack with an explicit magic — the
// dialer picks MuxMagicBinary to offer the binary codec, MuxMagic for
// JSON; the listener acks whichever it accepted.
func WriteHelloMagic(w io.Writer, magic uint32, version byte) error {
	var buf [helloLen]byte
	binary.BigEndian.PutUint32(buf[:4], magic)
	buf[4] = version
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("wire: write mux hello: %w", err)
	}
	return nil
}

// ReadHello reads and validates an HRS2 mux preface/ack, returning the
// peer's version.
func ReadHello(r io.Reader) (byte, error) {
	_, v, err := readHello(r, false)
	return v, err
}

// ReadHelloMagic reads a preface/ack accepting either mux magic and
// returns which one the peer sent along with its version — the dialer
// uses it to learn which codec the listener acked.
func ReadHelloMagic(r io.Reader) (uint32, byte, error) {
	return readHello(r, true)
}

func readHello(r io.Reader, allowBinary bool) (uint32, byte, error) {
	var buf [helloLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("wire: read mux hello: %w", err)
	}
	magic := binary.BigEndian.Uint32(buf[:4])
	if magic != MuxMagic && !(allowBinary && magic == MuxMagicBinary) {
		return 0, 0, fmt.Errorf("wire: bad mux magic %#x", magic)
	}
	return magic, buf[4], nil
}

// FinishHello completes a hello whose first four bytes were already
// consumed by connection sniffing (see IsMuxPreface): it reads the
// version byte.
func FinishHello(r io.Reader) (byte, error) {
	var v [1]byte
	if _, err := io.ReadFull(r, v[:]); err != nil {
		return 0, fmt.Errorf("wire: read mux hello version: %w", err)
	}
	return v[0], nil
}

// IsMuxPreface reports whether a sniffed 4-byte header opens an HRS2
// (JSON-codec) multiplexed connection (as opposed to being a v1 length
// prefix).
func IsMuxPreface(hdr [4]byte) bool {
	return binary.BigEndian.Uint32(hdr[:]) == MuxMagic
}

// IsBinaryMuxPreface reports whether a sniffed 4-byte header opens an
// HRS3 (binary-codec) multiplexed connection.
func IsBinaryMuxPreface(hdr [4]byte) bool {
	return binary.BigEndian.Uint32(hdr[:]) == MuxMagicBinary
}

// muxHeaderLen is the per-frame header: kind, request ID, body length.
const muxHeaderLen = 1 + 8 + 4

// deadlineLen is the binary deadline prefix: remaining millis, uint32.
const deadlineLen = 4

// maxDeadlineMillis caps the encodable budget (~49.7 days); larger
// budgets are clamped rather than wrapped.
const maxDeadlineMillis = int64(^uint32(0))

// AppendMuxFrame appends one encoded multiplexed frame to dst and
// returns the extended slice. GoAway frames carry no body; every other
// kind carries the JSON-encoded message. A request whose message holds a
// trace context and/or a deadline budget is written as the matching
// prefixed kind (FrameRequestTraced, FrameRequestDeadline,
// FrameRequestTracedDeadline): the context rides as a 17-byte binary
// prefix and the deadline as a 4-byte millisecond count ahead of the
// JSON body (which is encoded without its "tc"/"dl" fields), keeping the
// hot-path cost fixed instead of extra JSON per hop.
//
// Because it appends, callers can pack several frames into one buffer
// and hand them to the kernel in a single write — the primitive under
// the Coalescer's batched flushes.
func AppendMuxFrame(dst []byte, kind FrameKind, id uint64, m Message) ([]byte, error) {
	return AppendMuxFrameCodec(dst, kind, id, m, JSON)
}

// AppendMuxFrameCodec is AppendMuxFrame with an explicit body codec —
// the connection's negotiated encoding. The message body is serialized
// by the codec directly into dst after the (header, prefix) placeholder,
// so the binary hot path never materializes an intermediate body slice.
// A nil codec means JSON.
func AppendMuxFrameCodec(dst []byte, kind FrameKind, id uint64, m Message, c Codec) ([]byte, error) {
	if !kind.valid() {
		return dst, fmt.Errorf("wire: write frame of unknown kind %d", byte(kind))
	}
	if c == nil {
		c = JSON
	}
	var tc TraceContext
	var dl int64
	if kind.isRequest() {
		if !m.TC.IsZero() {
			tc, m.TC = m.TC, TraceContext{}
		}
		if m.DL > 0 {
			dl, m.DL = min(m.DL, maxDeadlineMillis), 0
		}
		kind = requestKind(!tc.IsZero(), dl > 0)
	}
	prefix := 0
	if !tc.IsZero() {
		prefix += TraceContextLen
	}
	if dl > 0 {
		prefix += deadlineLen
	}
	start := len(dst)
	// Reserve the (header, prefix) placeholder from a stack array rather
	// than append(dst, make(...)...): the compiler's append-make fusion is
	// off under race instrumentation, and the zero-alloc pin holds there
	// too.
	var zeros [muxHeaderLen + TraceContextLen + deadlineLen]byte
	dst = append(dst, zeros[:muxHeaderLen+prefix]...)
	bodyStart := len(dst)
	if kind != FrameGoAway {
		var err error
		dst, err = c.AppendMessage(dst, m)
		if err != nil {
			return dst[:start], err
		}
	}
	bodyLen := len(dst) - bodyStart
	if bodyLen > maxFrame {
		return dst[:start], fmt.Errorf("wire: frame of %d bytes exceeds limit %d", bodyLen, maxFrame)
	}
	hdr := dst[start:bodyStart]
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(prefix+bodyLen))
	off := muxHeaderLen
	if !tc.IsZero() {
		tc.AppendBinary(hdr[off : off : off+TraceContextLen])
		off += TraceContextLen
	}
	if dl > 0 {
		binary.BigEndian.PutUint32(hdr[off:off+deadlineLen], uint32(dl))
	}
	return dst, nil
}

// frameBufPool recycles the scratch buffers WriteMuxFrame assembles
// frames in, so the steady-state frame write allocates only its JSON
// body. Oversized buffers are dropped instead of pooled.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// pooledBufMax caps the capacity of buffers returned to frameBufPool; a
// rare giant frame must not pin its memory forever.
const pooledBufMax = 64 << 10

// WriteMuxFrame writes one multiplexed frame, assembled in a pooled
// buffer (see AppendMuxFrame for the encoding).
func WriteMuxFrame(w io.Writer, kind FrameKind, id uint64, m Message) error {
	return WriteMuxFrameCodec(w, kind, id, m, JSON)
}

// WriteMuxFrameCodec is WriteMuxFrame with an explicit body codec.
func WriteMuxFrameCodec(w io.Writer, kind FrameKind, id uint64, m Message, c Codec) error {
	bp := frameBufPool.Get().(*[]byte)
	buf, err := AppendMuxFrameCodec((*bp)[:0], kind, id, m, c)
	if err == nil {
		// One Write keeps the frame contiguous under concurrent writers
		// that serialize on a mutex but must not interleave partial frames.
		if _, werr := w.Write(buf); werr != nil {
			err = fmt.Errorf("wire: write mux frame: %w", werr)
		}
	}
	if cap(buf) <= pooledBufMax {
		*bp = buf[:0]
		frameBufPool.Put(bp)
	}
	return err
}

// ReadMuxFrame reads one multiplexed frame: its kind, request ID, and
// message (zero Message for bodyless kinds). Prefixed request kinds are
// normalized: the binary trace-context and deadline prefixes are decoded
// into Message.TC / Message.DL and the kind is reported as FrameRequest,
// so serving loops handle every request variant identically.
func ReadMuxFrame(r io.Reader) (FrameKind, uint64, Message, error) {
	kind, id, m, _, err := ReadMuxFrameBuffer(r, nil)
	return kind, id, m, err
}

// ReadMuxFrameBuffer is ReadMuxFrame with a caller-owned scratch buffer:
// the frame body is read into scratch (grown as needed) and the possibly
// larger buffer is returned for the next call, so a long-lived read loop
// amortizes its body allocations to zero. The decoded Message owns its
// memory — JSON decoding and the binary-prefix parsers copy out of the
// scratch — so reusing the buffer immediately is safe.
func ReadMuxFrameBuffer(r io.Reader, scratch []byte) (FrameKind, uint64, Message, []byte, error) {
	return ReadMuxFrameBufferCodec(r, scratch, JSON)
}

// ReadMuxFrameBufferCodec is ReadMuxFrameBuffer with an explicit body
// codec — the connection's negotiated encoding. A nil codec means JSON.
func ReadMuxFrameBufferCodec(r io.Reader, scratch []byte, c Codec) (FrameKind, uint64, Message, []byte, error) {
	if c == nil {
		c = JSON
	}
	var hdr [muxHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, Message{}, scratch, fmt.Errorf("wire: read mux header: %w", err)
	}
	kind := FrameKind(hdr[0])
	if !kind.valid() {
		return 0, 0, Message{}, scratch, fmt.Errorf("wire: unknown frame kind %d", hdr[0])
	}
	id := binary.BigEndian.Uint64(hdr[1:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > maxFrame {
		return 0, 0, Message{}, scratch, fmt.Errorf("wire: mux frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if n == 0 {
		if kind.isRequest() && kind != FrameRequest {
			// Prefixed request kinds promise at least their binary prefix.
			return 0, 0, Message{}, scratch, fmt.Errorf("wire: bodyless %s frame lacks its binary prefix", kind)
		}
		return kind, id, Message{}, scratch, nil
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:cap(scratch)]
	body := scratch[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, Message{}, scratch, fmt.Errorf("wire: read mux body: %w", err)
	}
	var tc TraceContext
	var dl int64
	if kind == FrameRequestTraced || kind == FrameRequestTracedDeadline {
		var err error
		tc, err = ParseTraceContext(body)
		if err != nil {
			return 0, 0, Message{}, scratch, err
		}
		body = body[TraceContextLen:]
	}
	if kind == FrameRequestDeadline || kind == FrameRequestTracedDeadline {
		if len(body) < deadlineLen {
			return 0, 0, Message{}, scratch, fmt.Errorf("wire: %s frame of %d bytes lacks deadline prefix", kind, len(body))
		}
		dl = int64(binary.BigEndian.Uint32(body[:deadlineLen]))
		body = body[deadlineLen:]
	}
	if kind.isRequest() {
		kind = FrameRequest
	}
	m, err := c.DecodeMessage(body)
	if err != nil {
		return 0, 0, Message{}, scratch, err
	}
	if !tc.IsZero() {
		m.TC = tc
	}
	if dl > 0 {
		m.DL = dl
	}
	return kind, id, m, scratch, nil
}
