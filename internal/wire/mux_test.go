package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestMuxHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != helloLen {
		t.Fatalf("hello length = %d, want %d", got, helloLen)
	}
	v, err := ReadHello(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v != MuxVersion {
		t.Errorf("version = %d, want %d", v, MuxVersion)
	}
}

func TestMuxHelloBadMagic(t *testing.T) {
	if _, err := ReadHello(bytes.NewReader([]byte{0, 0, 0, 9, 2})); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadHello(bytes.NewReader([]byte{0x48, 0x52})); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestMuxMagicExceedsFrameLimit(t *testing.T) {
	// The negotiation trick depends on it: a v1 server reading the magic
	// as a length prefix must reject it instantly.
	if MuxMagic <= maxFrame {
		t.Fatalf("MuxMagic %#x must exceed maxFrame %#x for v1 fallback", MuxMagic, maxFrame)
	}
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("v1 decoder accepted the mux preface")
	}
}

func TestIsMuxPreface(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MuxMagic)
	if !IsMuxPreface(hdr) {
		t.Error("magic not recognized")
	}
	binary.BigEndian.PutUint32(hdr[:], 42) // a plausible v1 length
	if IsMuxPreface(hdr) {
		t.Error("v1 length prefix misread as mux preface")
	}
}

func TestFinishHello(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var hdr [4]byte
	copy(hdr[:], raw[:4]) // sniffed by the listener
	if !IsMuxPreface(hdr) {
		t.Fatal("preface not recognized")
	}
	v, err := FinishHello(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	if v != MuxVersion {
		t.Errorf("version = %d, want %d", v, MuxVersion)
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	msg, err := New(TypeQuery, Query{Target: "a.b", Mode: ModeHierarchical, TTL: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []FrameKind{FrameRequest, FrameResponse} {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, 77, msg); err != nil {
			t.Fatal(err)
		}
		k, id, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if k != kind || id != 77 {
			t.Errorf("kind/id = %v/%d, want %v/77", k, id, kind)
		}
		if m.Type != msg.Type || !bytes.Equal(m.Payload, msg.Payload) {
			t.Errorf("message round trip: %+v vs %+v", m, msg)
		}
	}
}

func TestMuxGoAwayBodyless(t *testing.T) {
	var buf bytes.Buffer
	// Any message passed with GoAway is ignored: the frame has no body.
	msg, err := New(TypeProbe, TableInfo{Name: "ignored"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMuxFrame(&buf, FrameGoAway, 0, msg); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != muxHeaderLen {
		t.Fatalf("goaway frame length = %d, want header-only %d", got, muxHeaderLen)
	}
	k, id, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if k != FrameGoAway || id != 0 || m.Type != "" || m.Payload != nil {
		t.Errorf("goaway decoded as kind=%v id=%d msg=%+v", k, id, m)
	}
}

func TestMuxFrameMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameRequest, 1, Message{Type: TypeProbe}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("unknown kind", func(t *testing.T) {
		raw := valid()
		raw[0] = 0xEE
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw)); err == nil {
			t.Error("unknown kind accepted")
		}
	})
	t.Run("write unknown kind", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameKind(9), 1, Message{Type: TypeProbe}); err == nil {
			t.Error("unknown kind written")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		raw := valid()
		binary.BigEndian.PutUint32(raw[9:13], maxFrame+1)
		_, _, _, err := ReadMuxFrame(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("oversized frame err = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		raw := valid()
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw[:muxHeaderLen-2])); err == nil {
			t.Error("truncated header accepted")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		raw := valid()
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw[:len(raw)-1])); err == nil {
			t.Error("truncated body accepted")
		}
	})
	t.Run("bad json body", func(t *testing.T) {
		body := []byte("not json")
		raw := make([]byte, muxHeaderLen+len(body))
		raw[0] = byte(FrameRequest)
		binary.BigEndian.PutUint64(raw[1:9], 3)
		binary.BigEndian.PutUint32(raw[9:13], uint32(len(body)))
		copy(raw[muxHeaderLen:], body)
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw)); err == nil {
			t.Error("undecodable body accepted")
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(nil)); err == nil {
			t.Error("empty stream accepted")
		}
	})
}

// TestMuxFrameStream decodes several frames back to back, as the
// connection read loops do.
func TestMuxFrameStream(t *testing.T) {
	var buf bytes.Buffer
	for id := uint64(1); id <= 5; id++ {
		if err := WriteMuxFrame(&buf, FrameRequest, id, Message{Type: TypeProbe}); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for id := uint64(1); id <= 5; id++ {
		k, gotID, _, err := ReadMuxFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if k != FrameRequest || gotID != id {
			t.Fatalf("frame %d decoded as kind=%v id=%d", id, k, gotID)
		}
	}
	if _, _, _, err := ReadMuxFrame(r); err == nil || !bytes.Contains([]byte(err.Error()), []byte(io.EOF.Error())) {
		t.Errorf("post-stream read err = %v, want EOF-ish", err)
	}
}

// FuzzReadMuxFrame hardens the mux decoder the same way FuzzReadFrame
// hardens the one-shot decoder: never panic, and round-trip anything
// accepted.
func FuzzReadMuxFrame(f *testing.F) {
	seed := func(kind FrameKind, id uint64, m Message) {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, id, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(FrameRequest, 1, Message{Type: TypeProbe})
	seed(FrameResponse, 1<<40, Message{Type: TypeQuery,
		Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)})
	seed(FrameGoAway, 0, Message{})

	// Malformed seeds: unknown kind, oversized length, truncations.
	bad := make([]byte, muxHeaderLen)
	bad[0] = 0xEE
	f.Add(bad)
	over := make([]byte, muxHeaderLen)
	over[0] = byte(FrameRequest)
	binary.BigEndian.PutUint32(over[9:13], maxFrame+1)
	f.Add(over)
	f.Add([]byte{byte(FrameRequest), 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, id, m, err := ReadMuxFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, id, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		k2, id2, m2, err := ReadMuxFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if k2 != kind || id2 != id || m2.Type != m.Type || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: (%v,%d,%+v) vs (%v,%d,%+v)", kind, id, m, k2, id2, m2)
		}
	})
}
