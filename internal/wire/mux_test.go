package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestMuxHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != helloLen {
		t.Fatalf("hello length = %d, want %d", got, helloLen)
	}
	v, err := ReadHello(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v != MuxVersion {
		t.Errorf("version = %d, want %d", v, MuxVersion)
	}
}

func TestMuxHelloBadMagic(t *testing.T) {
	if _, err := ReadHello(bytes.NewReader([]byte{0, 0, 0, 9, 2})); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadHello(bytes.NewReader([]byte{0x48, 0x52})); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestMuxMagicExceedsFrameLimit(t *testing.T) {
	// The negotiation trick depends on it: a v1 server reading the magic
	// as a length prefix must reject it instantly.
	if MuxMagic <= maxFrame {
		t.Fatalf("MuxMagic %#x must exceed maxFrame %#x for v1 fallback", MuxMagic, maxFrame)
	}
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("v1 decoder accepted the mux preface")
	}
}

func TestIsMuxPreface(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MuxMagic)
	if !IsMuxPreface(hdr) {
		t.Error("magic not recognized")
	}
	binary.BigEndian.PutUint32(hdr[:], 42) // a plausible v1 length
	if IsMuxPreface(hdr) {
		t.Error("v1 length prefix misread as mux preface")
	}
}

func TestFinishHello(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var hdr [4]byte
	copy(hdr[:], raw[:4]) // sniffed by the listener
	if !IsMuxPreface(hdr) {
		t.Fatal("preface not recognized")
	}
	v, err := FinishHello(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	if v != MuxVersion {
		t.Errorf("version = %d, want %d", v, MuxVersion)
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	msg, err := New(TypeQuery, Query{Target: "a.b", Mode: ModeHierarchical, TTL: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []FrameKind{FrameRequest, FrameResponse} {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, 77, msg); err != nil {
			t.Fatal(err)
		}
		k, id, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if k != kind || id != 77 {
			t.Errorf("kind/id = %v/%d, want %v/77", k, id, kind)
		}
		if m.Type != msg.Type || !bytes.Equal(m.Payload, msg.Payload) {
			t.Errorf("message round trip: %+v vs %+v", m, msg)
		}
	}
}

// TestMuxFrameDeadlinePrefix pins the wire format of the deadline-
// carrying request kinds: a message with a budget is written as
// FrameRequestDeadline (or FrameRequestTracedDeadline when it also
// carries a trace context), the budget rides as a 4-byte binary prefix
// rather than JSON, and the reader normalizes the kind back to
// FrameRequest with Message.DL restored.
func TestMuxFrameDeadlinePrefix(t *testing.T) {
	t.Run("deadline only", func(t *testing.T) {
		msg := Message{Type: TypeQuery, DL: 1234}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameRequest, 42, msg); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if FrameKind(raw[0]) != FrameRequestDeadline {
			t.Fatalf("wire kind = %v, want %v", FrameKind(raw[0]), FrameRequestDeadline)
		}
		if got := binary.BigEndian.Uint32(raw[muxHeaderLen : muxHeaderLen+deadlineLen]); got != 1234 {
			t.Errorf("binary deadline prefix = %d, want 1234", got)
		}
		if bytes.Contains(raw[muxHeaderLen+deadlineLen:], []byte(`"dl"`)) {
			t.Error("deadline leaked into the JSON body alongside the binary prefix")
		}
		k, id, m, err := ReadMuxFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if k != FrameRequest || id != 42 {
			t.Errorf("kind/id = %v/%d, want request/42", k, id)
		}
		if m.DL != 1234 {
			t.Errorf("restored DL = %d, want 1234", m.DL)
		}
	})

	t.Run("traced and deadline", func(t *testing.T) {
		msg := Message{
			Type: TypeQuery,
			TC:   TraceContext{TraceID: 7, SpanID: 9, Flags: FlagSampled},
			DL:   555,
		}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameRequest, 8, msg); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if FrameKind(raw[0]) != FrameRequestTracedDeadline {
			t.Fatalf("wire kind = %v, want %v", FrameKind(raw[0]), FrameRequestTracedDeadline)
		}
		// Prefix order is trace context first, then deadline.
		off := muxHeaderLen + TraceContextLen
		if got := binary.BigEndian.Uint32(raw[off : off+deadlineLen]); got != 555 {
			t.Errorf("binary deadline prefix = %d, want 555", got)
		}
		k, _, m, err := ReadMuxFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if k != FrameRequest {
			t.Errorf("kind = %v, want normalized request", k)
		}
		if m.TC != msg.TC {
			t.Errorf("restored TC = %+v, want %+v", m.TC, msg.TC)
		}
		if m.DL != 555 {
			t.Errorf("restored DL = %d, want 555", m.DL)
		}
	})

	t.Run("huge budget clamps", func(t *testing.T) {
		msg := Message{Type: TypeQuery, DL: maxDeadlineMillis + 99}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameRequest, 1, msg); err != nil {
			t.Fatal(err)
		}
		_, _, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if m.DL != maxDeadlineMillis {
			t.Errorf("clamped DL = %d, want %d", m.DL, maxDeadlineMillis)
		}
	})

	t.Run("responses keep deadline in json", func(t *testing.T) {
		// Only request kinds use the binary prefix; a response carrying DL
		// (unusual but legal) stays plain.
		msg := Message{Type: TypeQueryResult, DL: 777}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameResponse, 3, msg); err != nil {
			t.Fatal(err)
		}
		if FrameKind(buf.Bytes()[0]) != FrameResponse {
			t.Fatalf("wire kind = %v, want response", FrameKind(buf.Bytes()[0]))
		}
		k, _, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if k != FrameResponse || m.DL != 777 {
			t.Errorf("response round trip kind=%v DL=%d, want response/777", k, m.DL)
		}
	})
}

// TestMuxFrameDeadlineTruncatedPrefix rejects deadline-kind frames whose
// body is too short to hold the binary prefix.
func TestMuxFrameDeadlineTruncatedPrefix(t *testing.T) {
	build := func(kind FrameKind, body []byte) []byte {
		raw := make([]byte, muxHeaderLen+len(body))
		raw[0] = byte(kind)
		binary.BigEndian.PutUint64(raw[1:9], 5)
		binary.BigEndian.PutUint32(raw[9:13], uint32(len(body)))
		copy(raw[muxHeaderLen:], body)
		return raw
	}
	t.Run("deadline kind short body", func(t *testing.T) {
		raw := build(FrameRequestDeadline, []byte{0x01, 0x02}) // < deadlineLen
		_, _, _, err := ReadMuxFrame(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), "deadline prefix") {
			t.Errorf("truncated deadline prefix err = %v", err)
		}
	})
	t.Run("traced deadline kind missing deadline", func(t *testing.T) {
		// A full trace context but nothing after it: the deadline prefix
		// is still mandatory for this kind.
		tc := TraceContext{TraceID: 1, SpanID: 2}
		body := tc.AppendBinary(nil)
		raw := build(FrameRequestTracedDeadline, body)
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw)); err == nil {
			t.Error("traced-deadline frame without deadline prefix accepted")
		}
	})
}

func TestMuxGoAwayBodyless(t *testing.T) {
	var buf bytes.Buffer
	// Any message passed with GoAway is ignored: the frame has no body.
	msg, err := New(TypeProbe, TableInfo{Name: "ignored"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMuxFrame(&buf, FrameGoAway, 0, msg); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != muxHeaderLen {
		t.Fatalf("goaway frame length = %d, want header-only %d", got, muxHeaderLen)
	}
	k, id, m, err := ReadMuxFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if k != FrameGoAway || id != 0 || m.Type != "" || m.Payload != nil {
		t.Errorf("goaway decoded as kind=%v id=%d msg=%+v", k, id, m)
	}
}

func TestMuxFrameMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameRequest, 1, Message{Type: TypeProbe}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("unknown kind", func(t *testing.T) {
		raw := valid()
		raw[0] = 0xEE
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw)); err == nil {
			t.Error("unknown kind accepted")
		}
	})
	t.Run("write unknown kind", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, FrameKind(9), 1, Message{Type: TypeProbe}); err == nil {
			t.Error("unknown kind written")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		raw := valid()
		binary.BigEndian.PutUint32(raw[9:13], maxFrame+1)
		_, _, _, err := ReadMuxFrame(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("oversized frame err = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		raw := valid()
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw[:muxHeaderLen-2])); err == nil {
			t.Error("truncated header accepted")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		raw := valid()
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw[:len(raw)-1])); err == nil {
			t.Error("truncated body accepted")
		}
	})
	t.Run("bad json body", func(t *testing.T) {
		body := []byte("not json")
		raw := make([]byte, muxHeaderLen+len(body))
		raw[0] = byte(FrameRequest)
		binary.BigEndian.PutUint64(raw[1:9], 3)
		binary.BigEndian.PutUint32(raw[9:13], uint32(len(body)))
		copy(raw[muxHeaderLen:], body)
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(raw)); err == nil {
			t.Error("undecodable body accepted")
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		if _, _, _, err := ReadMuxFrame(bytes.NewReader(nil)); err == nil {
			t.Error("empty stream accepted")
		}
	})
}

// TestMuxFrameStream decodes several frames back to back, as the
// connection read loops do.
func TestMuxFrameStream(t *testing.T) {
	var buf bytes.Buffer
	for id := uint64(1); id <= 5; id++ {
		if err := WriteMuxFrame(&buf, FrameRequest, id, Message{Type: TypeProbe}); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for id := uint64(1); id <= 5; id++ {
		k, gotID, _, err := ReadMuxFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if k != FrameRequest || gotID != id {
			t.Fatalf("frame %d decoded as kind=%v id=%d", id, k, gotID)
		}
	}
	if _, _, _, err := ReadMuxFrame(r); err == nil || !bytes.Contains([]byte(err.Error()), []byte(io.EOF.Error())) {
		t.Errorf("post-stream read err = %v, want EOF-ish", err)
	}
}

// FuzzReadMuxFrame hardens the mux decoder the same way FuzzReadFrame
// hardens the one-shot decoder: never panic, and round-trip anything
// accepted.
func FuzzReadMuxFrame(f *testing.F) {
	seed := func(kind FrameKind, id uint64, m Message) {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, id, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(FrameRequest, 1, Message{Type: TypeProbe})
	seed(FrameResponse, 1<<40, Message{Type: TypeQuery,
		Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)})
	seed(FrameGoAway, 0, Message{})
	// Prefixed request variants: deadline only (kind 5), trace context
	// plus deadline (kind 6), and the envelope's From identity.
	seed(FrameRequest, 2, Message{Type: TypeQuery, From: "client-7", DL: 1234,
		Payload: []byte(`{"target":"a.b","mode":"forward","ttl":9}`)})
	seed(FrameRequest, 3, Message{Type: TypeQuery,
		TC: TraceContext{TraceID: 7, SpanID: 9, Flags: FlagSampled}, DL: 88})

	// Malformed seeds: unknown kind, oversized length, truncations.
	bad := make([]byte, muxHeaderLen)
	bad[0] = 0xEE
	f.Add(bad)
	over := make([]byte, muxHeaderLen)
	over[0] = byte(FrameRequest)
	binary.BigEndian.PutUint32(over[9:13], maxFrame+1)
	f.Add(over)
	f.Add([]byte{byte(FrameRequest), 0, 0})
	f.Add([]byte{})
	// A deadline-kind frame whose body is shorter than the prefix.
	short := make([]byte, muxHeaderLen+2)
	short[0] = byte(FrameRequestDeadline)
	binary.BigEndian.PutUint32(short[9:13], 2)
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, id, m, err := ReadMuxFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, kind, id, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		k2, id2, m2, err := ReadMuxFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if k2 != kind || id2 != id || m2.Type != m.Type || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: (%v,%d,%+v) vs (%v,%d,%+v)", kind, id, m, k2, id2, m2)
		}
		// The binary prefixes must survive the round trip too. A trace
		// context the encoder considers zero is dropped by omitzero, and a
		// request's oversized budget is clamped on re-encode, so only the
		// representable values are compared.
		if !m.TC.IsZero() && m2.TC != m.TC {
			t.Fatalf("trace context round trip mismatch: %+v vs %+v", m.TC, m2.TC)
		}
		wantDL := m.DL
		if kind == FrameRequest && wantDL > maxDeadlineMillis {
			wantDL = maxDeadlineMillis
		}
		if m.DL > 0 && m2.DL != wantDL {
			t.Fatalf("deadline round trip mismatch: %d vs %d (want %d)", m.DL, m2.DL, wantDL)
		}
	})
}
