package wire

// Distributed-tracing vocabulary: the trace context that rides every
// traced request across the hierarchy, the span records nodes keep in
// their ring-buffer stores, and the collection RPC that lets a client
// (hoursq -trace) reassemble the cross-node span tree.
//
// Propagation is dual-format. Over the v1 one-shot framing the context
// travels as an ordinary JSON envelope field on Message ("tc"), which
// peers that predate tracing simply ignore. Over the v2 mux framing the
// context is stripped from the JSON body and carried as a compact binary
// header of a dedicated frame kind (see FrameRequestTraced in mux.go), so
// the hot path pays 17 fixed bytes instead of ~60 bytes of JSON.

import (
	"encoding/binary"
	"fmt"
)

// FlagSampled marks a trace the head sampler selected: every node on the
// path records spans for it. A context with the flag clear is a
// "decided, not sampled" marker — downstream hops must neither record
// nor re-draw the sampling decision.
const FlagSampled byte = 1 << 0

// TraceContextLen is the binary encoding's size: trace ID, span ID, flags.
const TraceContextLen = 8 + 8 + 1

// TraceContext identifies the position of one request in a distributed
// trace: the trace it belongs to, the span that caused it (the caller's
// span, which the receiver adopts as parent), and the sampling decision.
// The zero value means "no trace context" (an undecided request).
type TraceContext struct {
	TraceID uint64 `json:"traceId"`
	SpanID  uint64 `json:"spanId"`
	Flags   byte   `json:"flags,omitempty"`
}

// IsZero reports whether no context is present (trace IDs are never 0).
func (tc TraceContext) IsZero() bool { return tc.TraceID == 0 }

// Sampled reports whether spans must be recorded for this trace.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// AppendBinary appends the fixed-size binary encoding:
// [traceID:8][spanID:8][flags:1], big-endian.
func (tc TraceContext) AppendBinary(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, tc.TraceID)
	b = binary.BigEndian.AppendUint64(b, tc.SpanID)
	return append(b, tc.Flags)
}

// ParseTraceContext decodes the fixed-size binary encoding.
func ParseTraceContext(b []byte) (TraceContext, error) {
	if len(b) < TraceContextLen {
		return TraceContext{}, fmt.Errorf("wire: trace context of %d bytes, want %d", len(b), TraceContextLen)
	}
	return TraceContext{
		TraceID: binary.BigEndian.Uint64(b[0:8]),
		SpanID:  binary.BigEndian.Uint64(b[8:16]),
		Flags:   b[16],
	}, nil
}

// SpanAttr is one key/value annotation on a span. A slice (not a map)
// keeps encoding deterministic and preserves the order annotations were
// made, including repeated keys from forwarding retries.
type SpanAttr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanRecord is the wire form of one finished span, as served by the
// trace-collection RPC and /debug/traces. ParentID 0 marks a root span;
// a ParentID absent from the collected set marks a span whose parent
// lives on an uncollected (or pre-tracing) peer.
type SpanRecord struct {
	TraceID       uint64     `json:"traceId"`
	SpanID        uint64     `json:"spanId"`
	ParentID      uint64     `json:"parentId,omitempty"`
	Name          string     `json:"name"`
	Node          string     `json:"node,omitempty"`
	StartUnixNano int64      `json:"startUnixNano"`
	DurationNanos int64      `json:"durationNanos"`
	Err           string     `json:"err,omitempty"`
	Attrs         []SpanAttr `json:"attrs,omitempty"`
}

// Attr returns the value of the first attribute with the given key.
func (s SpanRecord) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TraceGet asks a node for every span it holds for one trace.
type TraceGet struct {
	TraceID uint64 `json:"traceId"`
}

// TraceGetResult carries the node's spans for the requested trace.
type TraceGetResult struct {
	Spans []SpanRecord `json:"spans,omitempty"`
}
