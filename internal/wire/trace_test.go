package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceContextBinaryRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Flags: FlagSampled}
	b := tc.AppendBinary(nil)
	if len(b) != TraceContextLen {
		t.Fatalf("encoded length = %d, want %d", len(b), TraceContextLen)
	}
	got, err := ParseTraceContext(b)
	if err != nil {
		t.Fatalf("ParseTraceContext: %v", err)
	}
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	if _, err := ParseTraceContext(b[:TraceContextLen-1]); err == nil {
		t.Fatal("short buffer: want error")
	}
}

func TestTraceContextPredicates(t *testing.T) {
	var zero TraceContext
	if !zero.IsZero() || zero.Sampled() {
		t.Fatalf("zero context: IsZero=%v Sampled=%v", zero.IsZero(), zero.Sampled())
	}
	unsampled := TraceContext{TraceID: 7, SpanID: 9}
	if unsampled.IsZero() || unsampled.Sampled() {
		t.Fatalf("unsampled context: IsZero=%v Sampled=%v", unsampled.IsZero(), unsampled.Sampled())
	}
	sampled := TraceContext{TraceID: 7, SpanID: 9, Flags: FlagSampled}
	if !sampled.Sampled() {
		t.Fatal("sampled context: Sampled=false")
	}
}

// A zero TC must vanish from the JSON envelope entirely — old peers see
// byte-identical frames for untraced traffic, and traced traffic carries
// a "tc" object they ignore.
func TestMessageEnvelopeTCOmitted(t *testing.T) {
	m := Message{Type: TypeProbe}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "tc") {
		t.Fatalf("zero TC leaked into envelope: %s", raw)
	}

	m.TC = TraceContext{TraceID: 1, SpanID: 2, Flags: FlagSampled}
	raw, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"tc"`) {
		t.Fatalf("non-zero TC missing from envelope: %s", raw)
	}
	var back Message
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TC != m.TC {
		t.Fatalf("envelope TC round trip = %+v, want %+v", back.TC, m.TC)
	}
}

// V1 framing carries the context as the envelope field.
func TestV1FrameCarriesTraceContext(t *testing.T) {
	var buf bytes.Buffer
	m := Message{Type: TypeQuery, TC: TraceContext{TraceID: 11, SpanID: 22, Flags: FlagSampled}}
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TC != m.TC {
		t.Fatalf("v1 TC = %+v, want %+v", got.TC, m.TC)
	}
}

// Mux framing upgrades a traced request to FrameRequestTraced on the
// wire and normalizes it back on read; the JSON body must not carry the
// context redundantly.
func TestMuxTracedFrameRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xaaaa, SpanID: 0xbbbb, Flags: FlagSampled}
	m := Message{Type: TypeQuery, Payload: json.RawMessage(`{"target":"x"}`), TC: tc}

	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, FrameRequest, 42, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if FrameKind(raw[0]) != FrameRequestTraced {
		t.Fatalf("wire kind = %v, want %v", FrameKind(raw[0]), FrameRequestTraced)
	}
	if bytes.Contains(raw, []byte(`"tc"`)) {
		t.Fatalf("traced mux frame still carries JSON tc field: %q", raw)
	}

	kind, id, got, err := ReadMuxFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameRequest {
		t.Fatalf("normalized kind = %v, want %v", kind, FrameRequest)
	}
	if id != 42 {
		t.Fatalf("id = %d, want 42", id)
	}
	if got.TC != tc {
		t.Fatalf("TC = %+v, want %+v", got.TC, tc)
	}
	if got.Type != m.Type || string(got.Payload) != string(m.Payload) {
		t.Fatalf("message = %+v, want %+v", got, m)
	}
}

// An untraced request must stay a plain FrameRequest — byte-compatible
// with peers that predate FrameRequestTraced.
func TestMuxUntracedFrameUnchanged(t *testing.T) {
	m := Message{Type: TypeProbe}
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, FrameRequest, 7, m); err != nil {
		t.Fatal(err)
	}
	if FrameKind(buf.Bytes()[0]) != FrameRequest {
		t.Fatalf("wire kind = %v, want %v", FrameKind(buf.Bytes()[0]), FrameRequest)
	}
	kind, _, got, err := ReadMuxFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameRequest || !got.TC.IsZero() {
		t.Fatalf("kind=%v TC=%+v, want plain untraced request", kind, got.TC)
	}
}

// Responses never carry a context even if a handler forgets to clear it.
func TestMuxResponseDropsNoContext(t *testing.T) {
	m := Message{Type: TypeQueryResult, TC: TraceContext{TraceID: 3, SpanID: 4}}
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, FrameResponse, 9, m); err != nil {
		t.Fatal(err)
	}
	// Response kind is not upgraded; the context rides (harmlessly) in the
	// JSON envelope, which the caller ignores for responses.
	if FrameKind(buf.Bytes()[0]) != FrameResponse {
		t.Fatalf("wire kind = %v, want %v", FrameKind(buf.Bytes()[0]), FrameResponse)
	}
}

func TestSpanRecordAttr(t *testing.T) {
	s := SpanRecord{Attrs: []SpanAttr{{Key: "peer", Value: "a"}, {Key: "peer", Value: "b"}}}
	if v, ok := s.Attr("peer"); !ok || v != "a" {
		t.Fatalf("Attr(peer) = %q,%v; want first value %q", v, ok, "a")
	}
	if _, ok := s.Attr("missing"); ok {
		t.Fatal("Attr(missing) = ok")
	}
}
