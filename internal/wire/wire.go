// Package wire defines the message vocabulary and framing of the live
// HOURS prototype. Nodes exchange JSON-encoded request/response messages:
// admission (§3.1), routing-table construction via the parent (Algorithm
// 1), query forwarding (Algorithms 2-3), probing and active recovery
// (§4.3). Frames are length-prefixed so the same codec runs over TCP and
// in-memory pipes.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Type tags a message.
type Type string

// Message types. Requests and responses pair by convention
// (X / XResult).
const (
	// TypeJoin asks a parent to admit a new child (§3.1 admission).
	TypeJoin Type = "join"
	// TypeJoinResult acknowledges (or refuses) admission.
	TypeJoinResult Type = "join_result"
	// TypeTableInfo asks the parent for the overlay size and the
	// caller's ring index (Algorithm 1, line 1).
	TypeTableInfo Type = "table_info"
	// TypeTableInfoResult carries (N, index).
	TypeTableInfoResult Type = "table_info_result"
	// TypeResolve asks the parent for the addresses of sibling indices
	// (Algorithm 1, line 6).
	TypeResolve Type = "resolve"
	// TypeResolveResult carries the resolved addresses.
	TypeResolveResult Type = "resolve_result"
	// TypeChildSample asks a sibling for a random sample of its children
	// (nephew pointers, §4.1).
	TypeChildSample Type = "child_sample"
	// TypeChildSampleResult carries the sampled child addresses.
	TypeChildSampleResult Type = "child_sample_result"
	// TypeQuery forwards a lookup (Algorithms 2-3).
	TypeQuery Type = "query"
	// TypeQueryResult carries the answer or failure.
	TypeQueryResult Type = "query_result"
	// TypeProbe is the §4.3 liveness probe.
	TypeProbe Type = "probe"
	// TypeProbeResult acknowledges a probe.
	TypeProbeResult Type = "probe_result"
	// TypeNotifyCCW tells a node about its (possibly new)
	// counter-clockwise neighbor (conventional recovery, §4.3).
	TypeNotifyCCW Type = "notify_ccw"
	// TypeNotifyCCWResult acknowledges the notification.
	TypeNotifyCCWResult Type = "notify_ccw_result"
	// TypeRepair is the §4.3 Repair message routed around the ring.
	TypeRepair Type = "repair"
	// TypeRepairResult acknowledges the repair hop.
	TypeRepairResult Type = "repair_result"
	// TypeStats asks a node for its operational counters.
	TypeStats Type = "stats"
	// TypeStatsResult carries the counters.
	TypeStatsResult Type = "stats_result"
	// TypeTraceGet asks a node for the spans it holds for one trace
	// (collection side of distributed tracing; see trace.go).
	TypeTraceGet Type = "trace_get"
	// TypeTraceGetResult carries the spans.
	TypeTraceGetResult Type = "trace_get_result"
	// TypeError reports a request failure.
	TypeError Type = "error"
)

// Message is one framed protocol message. TC, when non-zero, is the
// distributed-tracing context the request travels under: over v1 framing
// it is an ordinary envelope field old peers ignore; over v2 mux framing
// it is stripped here and carried as a binary frame header instead (see
// WriteMuxFrame). Responses never carry a context.
//
// From identifies the caller for per-client admission control (§2/§3.1):
// clients stamp a stable identity of their choosing, forwarding nodes
// stamp their own address per hop. Peers that predate admission control
// ignore it; a missing From shares the anonymous bucket.
//
// DL is the remaining end-to-end deadline budget in milliseconds at the
// moment the request was written — wire-level deadline propagation, so a
// downstream hop can shed work whose deadline already expired instead of
// computing a dead answer. Over v1 framing it is an envelope field old
// peers ignore; over v2 mux framing it is stripped and carried as a
// binary frame prefix (see WriteMuxFrame). Responses never carry one.
type Message struct {
	Type    Type            `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	TC      TraceContext    `json:"tc,omitzero"`
	From    string          `json:"from,omitempty"`
	DL      int64           `json:"dl,omitzero"`

	// body, when non-nil, is the typed payload of a message built by
	// Typed (or decoded by the binary codec): encoding is deferred to
	// write time, where the connection's negotiated codec serializes it
	// directly into the frame buffer — no intermediate RawMessage.
	body any
	// owned marks a body decoded from the wire: nothing else references
	// it, so Decode may assign it shallowly. Sender-built bodies are not
	// owned (the in-process Mem transport delivers the same Message value
	// to the handler) and Decode deep-copies their slices instead.
	owned bool
}

// New encodes payload into a Message of the given type, eagerly
// marshaling it to JSON. Production paths prefer Typed, which defers
// encoding to the connection's negotiated codec; New remains for callers
// (and tests) that want the JSON bytes in hand.
func New(t Type, payload any) (Message, error) {
	if payload == nil {
		return Message{Type: t}, nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("wire: encode %s payload: %w", t, err)
	}
	return Message{Type: t, Payload: raw}, nil
}

// Typed wraps a typed payload into a Message without encoding it: the
// codec of whatever connection the message is written to serializes the
// body straight into the frame buffer (binary for the hot types on HRS3
// connections, single-pass JSON otherwise). body should be a pointer to
// one of this package's payload structs; nil means a bodyless message.
// Encoding errors, impossible for the package's own payload types,
// surface at write time.
func Typed(t Type, body any) Message {
	return Message{Type: t, body: body}
}

// Decode unmarshals the payload into out. Typed bodies of hot types
// assign without a JSON round trip (see assignBody); everything else
// takes the JSON path.
func (m Message) Decode(out any) error {
	if m.body != nil {
		if assignBody(m.body, out, m.owned) {
			return nil
		}
		// Mismatched or cold-typed body: fall back through JSON, which
		// also preserves the historical type-coercion semantics.
		raw, err := json.Marshal(m.body)
		if err != nil {
			return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
		}
		return nil
	}
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
	}
	return nil
}

// Join is the admission request.
type Join struct {
	Label string `json:"label"`
	Addr  string `json:"addr"`
}

// JoinResult acknowledges admission.
type JoinResult struct {
	Name string `json:"name"`
}

// TableInfo asks for overlay parameters; Name identifies the caller.
type TableInfo struct {
	Name string `json:"name"`
}

// TableInfoResult carries the overlay size and the caller's ring index.
type TableInfoResult struct {
	N     int `json:"n"`
	Index int `json:"index"`
}

// Resolve asks the parent to resolve sibling ring indices to addresses.
type Resolve struct {
	Indices []int `json:"indices"`
}

// Peer names one overlay member.
type Peer struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Addr  string `json:"addr"`
}

// ResolveResult carries resolved peers in request order.
type ResolveResult struct {
	Peers []Peer `json:"peers"`
}

// ChildSample asks a sibling for up to Count of its children, drawn
// randomly (nephew pointers).
type ChildSample struct {
	Count int `json:"count"`
}

// ChildSampleResult carries the sampled children.
type ChildSampleResult struct {
	Children []Peer `json:"children"`
}

// QueryMode is the forwarding mode carried by a query (Algorithm 3).
type QueryMode string

const (
	// ModeHierarchical means the query is on the prescribed top-down
	// path.
	ModeHierarchical QueryMode = "hierarchical"
	// ModeForward means clockwise greedy overlay forwarding.
	ModeForward QueryMode = "forward"
	// ModeBackward means counter-clockwise backward forwarding (§4.2).
	ModeBackward QueryMode = "backward"
	// ModeNephew means the hop followed a nephew pointer into the
	// next-level overlay after the OD node was found dead (§4.1). It
	// behaves like ModeHierarchical for forwarding decisions; the
	// distinct tag exists so traces show where a detour dropped a level.
	ModeNephew QueryMode = "nephew"
)

// HopRecord is one hop of a traced query: which node handled it, that
// node's ring index in its sibling overlay (-1 for the root or before
// BuildTable), the mode by which the query arrived, and how long the node
// spent on it (local handling plus the downstream call it chose).
type HopRecord struct {
	Node           string    `json:"node"`
	Index          int       `json:"index"`
	Mode           QueryMode `json:"mode"`
	DurationMicros int64     `json:"durationMicros,omitempty"`
}

// Query is a forwarded lookup. Overlay routing needs no explicit
// overlay-destination field: names are public, so every node derives the
// OD node at its own level by hashing the target's ancestor name — the
// same public-hash property the paper's topology-aware attacker exploits.
type Query struct {
	// Target is the full name whose answer is sought.
	Target string `json:"target"`
	// Mode is the current forwarding mode.
	Mode QueryMode `json:"mode"`
	// Hops counts forwarding hops so far.
	Hops int `json:"hops"`
	// TTL bounds forwarding; decremented per hop.
	TTL int `json:"ttl"`
	// Path records visited node names (diagnostics).
	Path []string `json:"path,omitempty"`
	// Trace asks every node on the path to append a HopRecord. Peers
	// that predate tracing ignore both fields and still answer; the
	// trace is then merely truncated at the first old hop.
	Trace bool `json:"trace,omitempty"`
	// HopTrace accumulates per-hop records when Trace is set.
	HopTrace []HopRecord `json:"hopTrace,omitempty"`
}

// QueryResult carries the outcome of a query. Cached marks an answer
// served from a client-side cache because the hierarchy was overloaded —
// possibly stale, but better than amplifying the overload with retries.
type QueryResult struct {
	Found  bool     `json:"found"`
	Answer string   `json:"answer,omitempty"`
	Hops   int      `json:"hops"`
	Path   []string `json:"path,omitempty"`
	Reason string   `json:"reason,omitempty"`
	Cached bool     `json:"cached,omitempty"`
	// HopTrace carries the per-hop records of a traced query.
	HopTrace []HopRecord `json:"hopTrace,omitempty"`
}

// NotifyCCW announces the sender as the receiver's counter-clockwise
// neighbor candidate.
type NotifyCCW struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Addr  string `json:"addr"`
}

// Repair is the §4.3 repair message, destined to its origin.
type Repair struct {
	OriginIndex int    `json:"originIndex"`
	OriginName  string `json:"originName"`
	OriginAddr  string `json:"originAddr"`
	Hops        int    `json:"hops"`
	TTL         int    `json:"ttl"`
}

// Stats carries a node's operational counters (TypeStatsResult). The
// named int64 fields are the legacy counter set, kept populated so old
// peers keep working; Metrics carries the full registry snapshot
// (counters, gauges, histogram summaries). Peers that predate the
// registry ignore the unknown field, and a missing Metrics decodes as
// nil — both directions interoperate.
type Stats struct {
	Name              string        `json:"name"`
	Index             int           `json:"index"`
	TableEntries      int           `json:"tableEntries"`
	Epoch             uint64        `json:"epoch"`
	QueriesAnswered   int64         `json:"queriesAnswered"`
	QueriesForwarded  int64         `json:"queriesForwarded"`
	ProbesSent        int64         `json:"probesSent"`
	RepairsOriginated int64         `json:"repairsOriginated"`
	EntriesCreated    int64         `json:"entriesCreated"`
	Metrics           *obs.Snapshot `json:"metrics,omitempty"`
}

// ErrCodeOverloaded marks a deliberate admission-control rejection: the
// server shed the request to protect itself and the caller should back
// off for RetryAfterMillis before retrying (§2 admission control).
const ErrCodeOverloaded = "overloaded"

// Error carries a request failure. Code, when set, classifies the
// failure machine-readably so typed errors survive the wire; peers that
// predate codes ignore it and fall back to the Reason string.
type Error struct {
	Reason string `json:"reason"`
	Code   string `json:"code,omitempty"`
	// RetryAfterMillis is the server's backoff hint for ErrCodeOverloaded.
	RetryAfterMillis int64 `json:"retryAfterMillis,omitempty"`
}

// maxFrame bounds decoded frames; prototype messages are small, so a large
// frame indicates corruption or abuse.
const maxFrame = 1 << 20

// encodeFrame marshals a message body and enforces the frame limit. It
// encodes envelope and payload in a single pass through the pooled JSON
// encoder (see appendJSONMessage), so even eagerly built messages pay
// one marshal, not two.
func encodeFrame(m Message) ([]byte, error) {
	body, err := appendJSONMessage(nil, m)
	if err != nil {
		return nil, err
	}
	if len(body) > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(body), maxFrame)
	}
	return body, nil
}

// decodeFrame unmarshals a frame body.
func decodeFrame(body []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return m, nil
}

// WriteFrame writes one length-prefixed message (framing version 1: a
// single request or response per connection direction).
func WriteFrame(w io.Writer, m Message) error {
	body, err := encodeFrame(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("wire: read frame header: %w", err)
	}
	return ReadFrameWithHeader(r, hdr)
}

// ReadFrameWithHeader completes a v1 frame read whose 4-byte length
// prefix has already been consumed — version-sniffing servers read the
// prefix to distinguish mux connections (see IsMuxPreface) and finish the
// one-shot path here.
func ReadFrameWithHeader(r io.Reader, hdr [4]byte) (Message, error) {
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	return decodeFrame(body)
}
