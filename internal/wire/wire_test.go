package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/obs"
)

func TestNewAndDecode(t *testing.T) {
	m, err := New(TypeQuery, Query{Target: "cs.ucla.edu", Mode: ModeForward, Hops: 7, TTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeQuery {
		t.Errorf("type = %v", m.Type)
	}
	var q Query
	if err := m.Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Target != "cs.ucla.edu" || q.Mode != ModeForward || q.Hops != 7 || q.TTL != 64 {
		t.Errorf("round trip = %+v", q)
	}
}

func TestNewNilPayload(t *testing.T) {
	m, err := New(TypeProbe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeProbe || m.Payload != nil {
		t.Errorf("m = %+v", m)
	}
}

func TestDecodeError(t *testing.T) {
	m := Message{Type: TypeQuery, Payload: []byte("{not json")}
	var q Query
	if err := m.Decode(&q); err == nil {
		t.Error("bad payload: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []Message{}
	for _, payload := range []any{
		Join{Label: "ucla", Addr: "mem://7"},
		TableInfoResult{N: 50000, Index: 123},
		Resolve{Indices: []int{1, 5, 99}},
		ResolveResult{Peers: []Peer{{Index: 1, Name: "a", Addr: "x"}}},
		QueryResult{Found: true, Answer: "addr", Hops: 9, Path: []string{"a", "b"}},
		Repair{OriginIndex: 4, OriginName: "n", OriginAddr: "a", TTL: 100},
		Error{Reason: "boom"},
		Query{Target: "a.b", Mode: ModeNephew, TTL: 8, Trace: true,
			HopTrace: []HopRecord{{Node: ".", Index: -1, Mode: ModeHierarchical, DurationMicros: 12}}},
		QueryResult{Found: true, Answer: "x", HopTrace: []HopRecord{{Node: "a", Index: 0, Mode: ModeForward}}},
	} {
		m, err := New(TypeQuery, payload)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != msgs[i].Type || !bytes.Equal(got.Payload, msgs[i].Payload) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	m, err := New(TypeProbe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 2, len(data) - 1} {
		if _, err := ReadFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncated at %d: want error", cut)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame error = %v", err)
	}
}

func TestReadFrameGarbage(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString(`{x!`)
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("garbage body: want error")
	}
}

// Property: any query payload round-trips through a frame.
func TestFrameProperty(t *testing.T) {
	f := func(target string, hops, od uint16, backward bool) bool {
		mode := ModeForward
		if backward {
			mode = ModeBackward
		}
		in := Query{Target: target, Mode: mode, Hops: int(hops + od), TTL: 64}
		m, err := New(TypeQuery, in)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var out Query
		if err := got.Decode(&out); err != nil {
			return false
		}
		return out.Target == in.Target && out.Mode == in.Mode &&
			out.Hops == in.Hops && out.TTL == in.TTL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTraceRoundTrip covers the hop-trace fields introduced for live
// observability: flag, records, and modes survive a frame round trip.
func TestTraceRoundTrip(t *testing.T) {
	in := Query{
		Target: "c.b.a", Mode: ModeBackward, Hops: 3, TTL: 9, Trace: true,
		HopTrace: []HopRecord{
			{Node: ".", Index: -1, Mode: ModeHierarchical, DurationMicros: 40},
			{Node: "b.a", Index: 2, Mode: ModeForward, DurationMicros: 15},
			{Node: "c.b.a", Index: 5, Mode: ModeNephew},
		},
	}
	m, err := New(TypeQuery, in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out Query
	if err := got.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Trace || len(out.HopTrace) != 3 {
		t.Fatalf("trace round trip = %+v", out)
	}
	for i := range in.HopTrace {
		if out.HopTrace[i] != in.HopTrace[i] {
			t.Errorf("hop %d = %+v, want %+v", i, out.HopTrace[i], in.HopTrace[i])
		}
	}
}

// TestStatsRoundTripWithMetrics covers the registry snapshot riding in
// Stats, and both interop directions: a new payload decoded by a peer
// that ignores unknown fields, and an old payload (no metrics) decoding
// into the new struct.
func TestStatsRoundTripWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("hours_queries_answered_total").Add(7)
	reg.Gauge("hours_table_entries").Set(4)
	reg.Histogram("hours_rpc_client_seconds", obs.L("type", "query")).Observe(3 * time.Millisecond)
	snap := reg.Snapshot()

	in := Stats{Name: "a.b", Index: 3, TableEntries: 4, QueriesAnswered: 7, Metrics: &snap}
	m, err := New(TypeStatsResult, in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := got.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Metrics == nil {
		t.Fatal("metrics snapshot lost in transit")
	}
	if out.Metrics.Counters["hours_queries_answered_total"] != 7 {
		t.Errorf("counters = %v", out.Metrics.Counters)
	}
	h, ok := out.Metrics.Histograms[`hours_rpc_client_seconds{type="query"}`]
	if !ok || h.Count != 1 {
		t.Errorf("histograms = %v", out.Metrics.Histograms)
	}

	// Old peer -> new peer: a legacy payload without metrics decodes with
	// Metrics nil.
	legacy := Message{Type: TypeStatsResult, Payload: []byte(`{"name":"x","queriesAnswered":2}`)}
	var st Stats
	if err := legacy.Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Metrics != nil || st.QueriesAnswered != 2 {
		t.Errorf("legacy decode = %+v", st)
	}

	// New peer -> old peer: unknown fields (including ones from future
	// versions) are ignored by encoding/json.
	future := Message{Type: TypeStatsResult, Payload: []byte(`{"name":"x","futureField":{"a":1},"metrics":{"counters":{"c":1}}}`)}
	if err := future.Decode(&st); err != nil {
		t.Fatalf("future fields must be ignored: %v", err)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	m, err := New(TypeQuery, Query{Target: "x.y.z", Mode: ModeForward, TTL: 64})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
