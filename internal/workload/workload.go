// Package workload generates the query and churn workloads used by the
// HOURS evaluation (§6): uniform random (source, destination) query streams
// for single-overlay experiments, fixed-destination streams for the attack
// experiments, and Zipf-distributed query popularity for the caching
// discussion in §7.
package workload

import (
	"fmt"
	"math/rand/v2"
)

// Query is one lookup request injected into an overlay or hierarchy.
type Query struct {
	// Src is the index of the entrance node.
	Src int
	// Dst is the index of the destination (OD) node.
	Dst int
}

// UniformQueries returns a generator that yields queries with source and
// destination drawn uniformly and independently from [0, n), skipping
// src == dst pairs (a query to yourself takes no forwarding).
func UniformQueries(rng *rand.Rand, n int) (func() Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: uniform queries need n >= 2, got %d", n)
	}
	return func() Query {
		src := rng.IntN(n)
		dst := rng.IntN(n - 1)
		if dst >= src {
			dst++
		}
		return Query{Src: src, Dst: dst}
	}, nil
}

// FixedDestQueries returns a generator that yields queries from uniform
// random sources to a single destination, the §6.2 workload where all
// 1 million queries target node D.
func FixedDestQueries(rng *rand.Rand, n, dst int) (func() Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: fixed-dest queries need n >= 2, got %d", n)
	}
	if dst < 0 || dst >= n {
		return nil, fmt.Errorf("workload: destination %d out of range [0,%d)", dst, n)
	}
	return func() Query {
		src := rng.IntN(n - 1)
		if src >= dst {
			src++
		}
		return Query{Src: src, Dst: dst}
	}, nil
}

// ZipfQueries returns a generator whose destination popularity follows a
// Zipf distribution with exponent s over n destinations (rank 1 most
// popular), with uniform random sources. The paper's §7 caching discussion
// cites Zipf-like web/DNS query patterns.
func ZipfQueries(rng *rand.Rand, n int, s float64) (func() Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: zipf queries need n >= 2, got %d", n)
	}
	z, err := NewZipf(n, s)
	if err != nil {
		return nil, err
	}
	return func() Query {
		dst := z.Sample(rng)
		src := rng.IntN(n - 1)
		if src >= dst {
			src++
		}
		return Query{Src: src, Dst: dst}
	}, nil
}

// ChurnEvent describes one membership change in an overlay.
type ChurnEvent struct {
	// Join is true for a node arrival, false for a departure/failure.
	Join bool
	// Node is the index of the affected node.
	Node int
}

// ChurnStream returns a generator of join/leave events over n nodes where
// joinFraction of events are joins. The paper assumes membership dynamics
// are infrequent but nonzero (§2); the stream drives overlay-maintenance
// tests.
func ChurnStream(rng *rand.Rand, n int, joinFraction float64) (func() ChurnEvent, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: churn needs n >= 1, got %d", n)
	}
	if joinFraction < 0 || joinFraction > 1 {
		return nil, fmt.Errorf("workload: join fraction %v outside [0,1]", joinFraction)
	}
	return func() ChurnEvent {
		return ChurnEvent{
			Join: rng.Float64() < joinFraction,
			Node: rng.IntN(n),
		}
	}, nil
}
