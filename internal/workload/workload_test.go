package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestUniformQueriesNoSelfQueries(t *testing.T) {
	rng := xrand.New(1)
	gen, err := UniformQueries(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		q := gen()
		if q.Src == q.Dst {
			t.Fatalf("self query at draw %d: %+v", i, q)
		}
		if q.Src < 0 || q.Src >= 10 || q.Dst < 0 || q.Dst >= 10 {
			t.Fatalf("out-of-range query: %+v", q)
		}
	}
}

func TestUniformQueriesCoverage(t *testing.T) {
	rng := xrand.New(2)
	const n = 5
	gen, err := UniformQueries(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	seenSrc := make([]bool, n)
	seenDst := make([]bool, n)
	for i := 0; i < 5000; i++ {
		q := gen()
		seenSrc[q.Src] = true
		seenDst[q.Dst] = true
	}
	for i := 0; i < n; i++ {
		if !seenSrc[i] || !seenDst[i] {
			t.Errorf("node %d never drawn (src=%v dst=%v)", i, seenSrc[i], seenDst[i])
		}
	}
}

func TestUniformQueriesErrors(t *testing.T) {
	if _, err := UniformQueries(xrand.New(1), 1); err == nil {
		t.Error("n=1: want error")
	}
}

func TestFixedDestQueries(t *testing.T) {
	rng := xrand.New(3)
	gen, err := FixedDestQueries(rng, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		q := gen()
		if q.Dst != 42 {
			t.Fatalf("destination %d, want 42", q.Dst)
		}
		if q.Src == 42 || q.Src < 0 || q.Src >= 100 {
			t.Fatalf("bad source %d", q.Src)
		}
	}
}

func TestFixedDestQueriesErrors(t *testing.T) {
	if _, err := FixedDestQueries(xrand.New(1), 1, 0); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := FixedDestQueries(xrand.New(1), 10, 10); err == nil {
		t.Error("dst out of range: want error")
	}
	if _, err := FixedDestQueries(xrand.New(1), 10, -1); err == nil {
		t.Error("dst negative: want error")
	}
}

func TestNewZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("s=0: want error")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("s=NaN: want error")
	}
	if _, err := NewZipf(10, math.Inf(1)); err == nil {
		t.Error("s=+Inf: want error")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(50, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r := 0; r < z.N(); r++ {
		sum += z.Prob(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < z.N(); r++ {
		if z.Prob(r) > z.Prob(r-1)+1e-15 {
			t.Errorf("Prob(%d)=%v > Prob(%d)=%v", r, z.Prob(r), r-1, z.Prob(r-1))
		}
	}
}

func TestZipfEmpiricalMatchesProb(t *testing.T) {
	const n = 10
	z, err := NewZipf(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	const trials = 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[z.Sample(rng)]++
	}
	for r := 0; r < n; r++ {
		got := float64(counts[r]) / trials
		want := z.Prob(r)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs expected %v", r, got, want)
		}
	}
}

func TestZipfQueries(t *testing.T) {
	rng := xrand.New(7)
	gen, err := ZipfQueries(rng, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		q := gen()
		if q.Src == q.Dst {
			t.Fatalf("self query: %+v", q)
		}
		counts[q.Dst]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d draws) should dominate rank 50 (%d draws)", counts[0], counts[50])
	}
}

func TestZipfQueriesErrors(t *testing.T) {
	if _, err := ZipfQueries(xrand.New(1), 1, 1); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := ZipfQueries(xrand.New(1), 10, -1); err == nil {
		t.Error("s<0: want error")
	}
}

func TestChurnStream(t *testing.T) {
	rng := xrand.New(9)
	gen, err := ChurnStream(rng, 50, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		ev := gen()
		if ev.Node < 0 || ev.Node >= 50 {
			t.Fatalf("node %d out of range", ev.Node)
		}
		if ev.Join {
			joins++
		}
	}
	frac := float64(joins) / trials
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("join fraction %v, want ~0.3", frac)
	}
}

func TestChurnStreamErrors(t *testing.T) {
	if _, err := ChurnStream(xrand.New(1), 0, 0.5); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := ChurnStream(xrand.New(1), 10, 1.5); err == nil {
		t.Error("fraction>1: want error")
	}
	if _, err := ChurnStream(xrand.New(1), 10, -0.1); err == nil {
		t.Error("fraction<0: want error")
	}
}

// Property: every generator output stays in range for arbitrary sizes.
func TestGeneratorsInRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 2
		rng := xrand.New(seed)
		gen, err := UniformQueries(rng, n)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			q := gen()
			if q.Src < 0 || q.Src >= n || q.Dst < 0 || q.Dst >= n || q.Src == q.Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUniformQueries(b *testing.B) {
	gen, err := UniformQueries(xrand.New(1), 50000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z, err := NewZipf(50000, 0.91)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(rng)
	}
}
