package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Zipf samples ranks in [0, n) with P(rank r) proportional to 1/(r+1)^s.
// math/rand/v2 dropped the v1 Zipf generator, so we implement sampling by
// inversion of a precomputed CDF, which is exact and fast for the bounded
// populations the experiments use.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: zipf exponent must be positive and finite, got %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{cdf: cdf}, nil
}

// Sample draws one rank.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank r.
func (z *Zipf) Prob(r int) float64 {
	if r < 0 || r >= len(z.cdf) {
		return 0
	}
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
