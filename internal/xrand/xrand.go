// Package xrand provides seeded, reproducible randomness for the HOURS
// simulator and experiment harness.
//
// Every simulation object takes an explicit seed so that experiment runs are
// deterministic and failures are replayable. The package wraps
// math/rand/v2's PCG generator and adds the derivation and sampling helpers
// the overlay code needs.
package xrand

import "math/rand/v2"

// mixGamma is the 64-bit golden-ratio constant used to decorrelate derived
// streams (the SplitMix64 increment).
const mixGamma = 0x9e3779b97f4a7c15

// New returns a deterministic generator for the given seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^mixGamma))
}

// Derive returns a generator for a child stream of the given seed,
// decorrelated by stream index. It allows one experiment seed to fan out to
// many independent per-node or per-trial generators without sharing state.
func Derive(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(mix(seed+mixGamma), mix(stream+mixGamma)))
}

// mix is the SplitMix64 finalizer; it turns correlated inputs (seed, seed+1,
// ...) into well-distributed 64-bit values.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perm fills out with a random permutation of [0, len(out)) drawn from rng
// (Fisher-Yates).
func Perm(rng *rand.Rand, out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// SampleDistinct draws count distinct integers uniformly from [0, n) using
// rng. It is O(count) expected time via rejection against a small set, and
// falls back to a partial Fisher-Yates when count is a large fraction of n.
// It panics if count > n (a programming error).
func SampleDistinct(rng *rand.Rand, n, count int) []int32 {
	if count > n {
		panic("xrand: SampleDistinct count > n")
	}
	if count <= 0 {
		return nil
	}
	// For dense draws, a partial shuffle is cheaper than rejection.
	if count*3 >= n {
		idx := make([]int32, n)
		Perm(rng, idx)
		return idx[:count:count]
	}
	out := make([]int32, 0, count)
	seen := make(map[int32]struct{}, count)
	for len(out) < count {
		v := int32(rng.IntN(n))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
