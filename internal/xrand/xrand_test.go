package xrand

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds collided %d/100 times", same)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	a := Derive(7, 0)
	b := Derive(7, 1)
	c := Derive(7, 0)
	sameAB, sameAC := 0, 0
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av == bv {
			sameAB++
		}
		if av == cv {
			sameAC++
		}
	}
	if sameAB > 0 {
		t.Errorf("streams 0 and 1 collided %d/100 times", sameAB)
	}
	if sameAC != 100 {
		t.Errorf("stream 0 not reproducible: only %d/100 draws matched", sameAC)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(3)
	for _, n := range []int{0, 1, 2, 17, 1000} {
		out := make([]int32, n)
		Perm(rng, out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation: %v", n, out)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// Chi-squared style sanity check: the first element of a length-4
	// permutation should be near-uniform over 4000 trials.
	rng := New(9)
	counts := make([]int, 4)
	out := make([]int32, 4)
	const trials = 4000
	for i := 0; i < trials; i++ {
		Perm(rng, out)
		counts[out[0]]++
	}
	for v, c := range counts {
		if c < trials/4-150 || c > trials/4+150 {
			t.Errorf("value %d appeared %d times, want ~%d", v, c, trials/4)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := New(11)
	tests := []struct {
		n, count int
	}{
		{10, 0}, {10, 1}, {10, 3}, {10, 10}, {1000, 5}, {100, 90},
	}
	for _, tt := range tests {
		got := SampleDistinct(rng, tt.n, tt.count)
		if len(got) != tt.count {
			t.Errorf("n=%d count=%d: got %d values", tt.n, tt.count, len(got))
		}
		seen := make(map[int32]struct{}, len(got))
		for _, v := range got {
			if v < 0 || int(v) >= tt.n {
				t.Errorf("n=%d count=%d: value %d out of range", tt.n, tt.count, v)
			}
			if _, dup := seen[v]; dup {
				t.Errorf("n=%d count=%d: duplicate value %d", tt.n, tt.count, v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestSampleDistinctPanicsWhenOverdrawn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleDistinct(_, 3, 4) did not panic")
		}
	}()
	SampleDistinct(New(1), 3, 4)
}

// Property: SampleDistinct always returns count distinct in-range values for
// any valid (n, count).
func TestSampleDistinctProperty(t *testing.T) {
	rng := New(13)
	f := func(nRaw, cRaw uint16) bool {
		n := int(nRaw%500) + 1
		count := int(cRaw) % (n + 1)
		got := SampleDistinct(rng, n, count)
		if len(got) != count {
			return false
		}
		seen := make(map[int32]struct{}, count)
		for _, v := range got {
			if v < 0 || int(v) >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSampleDistinctSparse(b *testing.B) {
	rng := New(1)
	for i := 0; i < b.N; i++ {
		_ = SampleDistinct(rng, 50000, 10)
	}
}

func BenchmarkSampleDistinctDense(b *testing.B) {
	rng := New(1)
	for i := 0; i < b.N; i++ {
		_ = SampleDistinct(rng, 1000, 900)
	}
}
