#!/bin/sh
# check.sh — the repo's one-stop hygiene gate: static checks, formatting,
# and the full test suite under the race detector. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet -structtag -copylocks (robustness packages)"
go vet -structtag -copylocks ./internal/transport/ ./internal/node/ ./internal/cluster/

echo "==> go test -race"
go test -race ./...

# The chaos soak is the robustness acceptance gate: seeded loss, latency,
# and suppression with delivery-ratio and ring-repair assertions. It runs
# in the suite above too; this explicit pass keeps it visible (and -short
# keeps it under a few seconds — drop the flag for the full soak).
echo "==> chaos soak (-race, fixed seed)"
go test -race -short -run 'TestChaosSoak' -v ./internal/cluster/ | grep -E 'chaos soak|ok|FAIL'

echo "OK"
