#!/bin/sh
# check.sh — the repo's one-stop hygiene gate: static checks, formatting,
# and the full test suite under the race detector. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet -structtag -copylocks (robustness packages)"
go vet -structtag -copylocks ./internal/transport/ ./internal/node/ ./internal/cluster/

echo "==> go test -race"
go test -race ./...

# The chaos soak is the robustness acceptance gate: seeded loss, latency,
# and suppression with delivery-ratio and ring-repair assertions. It runs
# in the suite above too; this explicit pass keeps it visible (and -short
# keeps it under a few seconds — drop the flag for the full soak).
echo "==> chaos soak (-race, fixed seed)"
go test -race -short -run 'TestChaosSoak' -v ./internal/cluster/ | grep -E 'chaos soak|ok|FAIL'

# Transport benchmark smoke: pooled vs dial-per-call at 1 and 64
# concurrent callers. The numbers land in BENCH_transport.json so a
# regression (pooled dropping under ~3x dial-per-call at c64) is visible
# in review diffs.
echo "==> transport bench smoke (pooled vs dial-per-call)"
bench_out=$(go test -run '^$' -bench 'BenchmarkTCPCall' -benchtime 0.2s ./internal/transport/)
echo "$bench_out" | grep 'BenchmarkTCPCall'
echo "$bench_out" | awk '
    BEGIN { print "{" }
    /^BenchmarkTCPCall\// {
        split($1, parts, "/")
        name = parts[2] "/" parts[3]
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ",\n"
        printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s}", name, $2, $3
    }
    END { print "\n}" }
' > BENCH_transport.json
echo "    wrote BENCH_transport.json"

echo "OK"
