#!/bin/sh
# check.sh — the repo's one-stop hygiene gate: static checks, formatting,
# and the full test suite under the race detector. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet -structtag -copylocks (robustness packages)"
go vet -structtag -copylocks ./internal/transport/ ./internal/node/ ./internal/cluster/ ./internal/routing/

echo "==> go test -race"
go test -race ./...

# The chaos soak is the robustness acceptance gate: seeded loss, latency,
# and suppression with delivery-ratio and ring-repair assertions. It runs
# in the suite above too; this explicit pass keeps it visible (and -short
# keeps it under a few seconds — drop the flag for the full soak).
echo "==> chaos soak (-race, fixed seed)"
go test -race -short -run 'TestChaosSoak' -v ./internal/cluster/ | grep -E 'chaos soak|ok|FAIL'

# Transport benchmark smoke: pooled (batched), unbatched, and
# dial-per-call at 1 and 64 concurrent callers. The numbers land in
# BENCH_transport.json so a regression (pooled dropping under ~3x
# dial-per-call at c64) is visible in review diffs.
echo "==> transport bench smoke (pooled vs nobatch vs dial-per-call)"
bench_out=$(go test -run '^$' -bench 'BenchmarkTCPCall' -benchmem -benchtime 0.2s ./internal/transport/)
echo "$bench_out" | grep 'BenchmarkTCPCall'
echo "$bench_out" | awk '
    BEGIN { print "{" }
    /^BenchmarkTCPCall\// {
        split($1, parts, "/")
        name = parts[2] "/" parts[3]
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ",\n"
        printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s}", name, $2, $3
    }
    END { print "\n}" }
' > BENCH_transport.json
echo "    wrote BENCH_transport.json"

# Frame-batching acceptance (DESIGN.md §12): the write coalescer must
# hold >= 1.3x throughput (or >= 30% fewer allocs) on pooled/c64 against
# the frozen pre-batching baseline. The batched-vs-unbatched numbers
# land in BENCH_batch.json next to that baseline so the win (and any
# regression) is visible in review diffs.
echo "$bench_out" | awk '
    BEGIN {
        print "{"
        print "  \"baseline_pre_pr\": {"
        print "    \"_comment\": \"pooled/c64 before write coalescing (frozen from BENCH_transport.json at 0704c63; allocs remeasured locally with -benchmem)\","
        print "    \"pooled/c64\": {\"ns_per_op\": 14831, \"bytes_per_op\": 1976, \"allocs_per_op\": 34}"
        print "  },"
        printf "  \"current\": {"
    }
    /^BenchmarkTCPCall\/(pooled|nobatch)\// {
        split($1, parts, "/")
        name = parts[2] "/" parts[3]
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ","
        printf "\n    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
    }
    END { print "\n  }\n}" }
' > BENCH_batch.json
echo "    wrote BENCH_batch.json"

# Wire-codec acceptance (DESIGN.md §13): pooled/* negotiates the HRS3
# binary codec end to end while json/* pins both ends to the HRS2 JSON
# encoding, so the pooled-vs-json delta is the codec's full effect. This
# comparison gets its own longer run — at 0.2s the two sides land within
# scheduler noise of each other. The numbers land in BENCH_codec.json
# next to the frozen pre-codec baseline; the hard gate holds the binary
# hot path at <= 22 allocs/op and <= 1229 bytes/op on pooled/c64 (ns/op
# is checked against json but only warns — wall-clock is too noisy on
# shared runners to fail the build).
echo "==> codec bench smoke (HRS3 binary vs HRS2 json, pooled)"
codec_out=$(go test -run '^$' -bench 'BenchmarkTCPCall/(pooled|json)/' -benchmem -benchtime 1s ./internal/transport/)
echo "$codec_out" | grep 'BenchmarkTCPCall'
echo "$codec_out" | awk '
    BEGIN {
        print "{" > "BENCH_codec.json"
        print "  \"baseline_pre_pr\": {" > "BENCH_codec.json"
        print "    \"_comment\": \"pooled/c64 before the HRS3 binary codec (frozen from BenchmarkTCPCall at b843976 with -benchmem)\"," > "BENCH_codec.json"
        print "    \"pooled/c64\": {\"ns_per_op\": 10289, \"bytes_per_op\": 1900, \"allocs_per_op\": 30}" > "BENCH_codec.json"
        print "  }," > "BENCH_codec.json"
        printf "  \"current\": {" > "BENCH_codec.json"
    }
    /^BenchmarkTCPCall\/(pooled|json)\// {
        split($1, parts, "/")
        name = parts[2] "/" parts[3]
        sub(/-[0-9]+$/, "", name)
        if (n++) printf "," > "BENCH_codec.json"
        printf "\n    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7 > "BENCH_codec.json"
        ns[name] = $3; bytes[name] = $5; allocs[name] = $7
    }
    END {
        print "\n  }\n}" > "BENCH_codec.json"
        if (allocs["pooled/c64"] > 22 || bytes["pooled/c64"] > 1229) {
            printf "FAIL: binary pooled/c64 at %s allocs/op, %s B/op (gate: <= 22 allocs, <= 1229 B)\n", allocs["pooled/c64"], bytes["pooled/c64"] > "/dev/stderr"
            exit 1
        }
        if (ns["pooled/c64"] + 0 > ns["json/c64"] + 0)
            printf "WARN: binary pooled/c64 (%s ns/op) slower than json/c64 (%s ns/op) this run\n", ns["pooled/c64"], ns["json/c64"] > "/dev/stderr"
    }
'
echo "    wrote BENCH_codec.json"

# Codec correctness gates, kept visible: the mixed-codec interop e2e
# (v1 one-shot + HRS2/json + HRS3/binary peers in one hierarchy, same
# answers, sim-equivalent routes, one connected trace tree) under the
# race detector, plus the zero-alloc pins and the exhaustiveness guard
# that forces a hot-or-fallback decision for every declared wire.Type.
echo "==> mixed-codec interop e2e (-race, v1 + HRS2/json + HRS3/binary)"
go test -race -run 'TestMixedCodecHierarchyE2E' -v ./internal/node/ | grep -E 'MixedCodecHierarchy|^ok|FAIL'

echo "==> codec zero-alloc pins + exhaustiveness guard"
go test -run 'ZeroAllocs|BinaryCodecExhaustive' -v ./internal/wire/ | grep -E 'ZeroAllocs|Exhaustive|^ok|FAIL'

# Query-coalescing acceptance: the singleflight contract (N identical
# concurrent lookups -> 1 upstream RPC, N admission charges, N spans;
# drained followers shed) under the race detector. Runs in the suite
# above too; this explicit pass keeps the gate visible.
echo "==> query coalescing (-race, singleflight contract)"
go test -race -run 'TestQueryCoalescing' -v ./internal/cluster/ | grep -E 'QueryCoalescing|^ok|FAIL'

# Simulation bench smoke: the intra-overlay and end-to-end query hot paths
# plus a fig9-shaped sweep cell (system build + attack + sharded Monte-Carlo
# query loop). Current numbers land in BENCH_sim.json next to the fixed
# pre-overhaul baseline so the speedup (and any regression) is visible in
# review diffs; the acceptance floor is >= 2x on BenchmarkFig9Cell.
echo "==> simulation bench smoke (query hot path + fig9-shaped sweep cell)"
sim_core=$(go test -run '^$' -bench 'BenchmarkQueryHealthy$' -benchtime 0.2s ./internal/core/)
sim_overlay=$(go test -run '^$' -bench 'BenchmarkRouteHealthy50k$' -benchtime 0.2s ./internal/overlay/)
sim_fig9=$(go test -run '^$' -bench 'BenchmarkFig9Cell$' -benchtime 3x ./internal/experiments/)
printf '%s\n%s\n%s\n' "$sim_core" "$sim_overlay" "$sim_fig9" | grep '^Benchmark'
printf '%s\n%s\n%s\n' "$sim_core" "$sim_overlay" "$sim_fig9" | awk '
    BEGIN {
        print "{"
        print "  \"baseline_pre_pr\": {"
        print "    \"_comment\": \"measured at d6acfcb (before the zero-alloc/lazy-CAS/fan-out engine overhaul), single-core runner\","
        print "    \"BenchmarkQueryHealthy\": {\"ns_per_op\": 111.8},"
        print "    \"BenchmarkRouteHealthy50k\": {\"ns_per_op\": 943.0},"
        print "    \"BenchmarkFig9Cell\": {\"ns_per_op\": 44631137, \"queries_per_s\": 89624}"
        print "  },"
        printf "  \"current\": {"
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ","
        printf "\n    \"%s\": {\"ns_per_op\": %s", name, $3
        if ($6 == "queries/s") printf ", \"queries_per_s\": %s", $5
        printf "}"
    }
    END { print "\n  }\n}" }
' > BENCH_sim.json
echo "    wrote BENCH_sim.json"

# Routing-kernel acceptance (DESIGN.md §14): the sim and the live node
# share one Algorithm 2/3 decision engine, so the kernel gets its own
# gates. The differential property test replays seeded random overlays
# and fault patterns through the kernel-backed Route and the pre-kernel
# reference implementation hop by hop, under the race detector; the
# bench smoke pins the decision path — view load + ranked-plan build —
# at zero allocations across table shapes (hard gate: any allocs/op > 0
# fails the build). Numbers land in BENCH_routing.json.
echo "==> routing kernel differential (-race, kernel vs pre-kernel reference)"
go test -race -short -run 'TestRouteKernelDifferential' -v ./internal/overlay/ | grep -E 'KernelDifferential|^ok|FAIL'

echo "==> routing kernel bench smoke (zero-alloc plan build)"
rt_out=$(go test -run '^$' -bench 'BenchmarkNextHops|BenchmarkRepairLaunchOrder' -benchmem -benchtime 0.2s ./internal/routing/)
echo "$rt_out" | grep '^Benchmark'
echo "$rt_out" | awk '
    BEGIN { print "{" > "BENCH_routing.json" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ",\n" > "BENCH_routing.json"
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7 > "BENCH_routing.json"
        if ($7 + 0 != 0) bad = bad name " "
    }
    END {
        print "\n}" > "BENCH_routing.json"
        if (bad != "") {
            printf "FAIL: routing kernel allocates on the decision path: %s(gate: 0 allocs/op)\n", bad > "/dev/stderr"
            exit 1
        }
    }
'
echo "    wrote BENCH_routing.json"

# Overload-control acceptance: the deterministic soak (aggressor at 20x
# fair share, Sybil flood, breaker trip/half-open/recover, cached
# degradation) under the race detector. Its summary counters plus the
# admission fast-path bench land in BENCH_overload.json; the zero-alloc
# pins are the hot-path regression guard.
echo "==> overload soak (-race, deterministic clocks)"
soak_out=$(go test -race -run 'TestOverloadSoak' -v ./internal/cluster/)
echo "$soak_out" | grep -E 'overload soak:|^ok|FAIL'

echo "==> overload zero-alloc pins + admission bench smoke"
go test -run 'ZeroAlloc' -v ./internal/overload/ | grep -E 'ZeroAlloc|^ok|FAIL'
ovl_bench=$(go test -run '^$' -bench 'BenchmarkLimiterAdmit$|BenchmarkGuardAdmit$' -benchmem -benchtime 0.2s ./internal/overload/)
echo "$ovl_bench" | grep '^Benchmark'
{
    echo "$soak_out" | grep 'overload soak:'
    echo "$ovl_bench" | grep '^Benchmark'
} | awk '
    BEGIN { print "{" }
    /overload soak:/ {
        printf "  \"soak\": {"
        k = 0
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (k++) printf ", "
                printf "\"%s\": %s", kv[1], kv[2]
            }
        }
        printf "}"
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        printf ",\n  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
    }
    END { print "\n}" }
' > BENCH_overload.json
echo "    wrote BENCH_overload.json"

# Distributed-tracing acceptance: the mixed-version e2e (v1 root + pooled
# children, injected fault, span-tree/sim-route equivalence) runs in the
# suite above too; this explicit -race pass keeps the tracing gate visible.
echo "==> trace propagation e2e (-race, mixed v1/mux wire)"
go test -race -run 'TestTracedQueryMixedVersion' -v ./internal/node/ | grep -E 'TracedQueryMixedVersion|ok|FAIL'

# Tracing bench smoke: span lifecycle and ring-store append, with
# allocations reported. The numbers land in BENCH_obs.json; the
# allocs_per_op columns are the regression guard (sampled-out span starts
# must stay at 0, the full lifecycle at its pinned count).
echo "==> obs/trace bench smoke (span lifecycle + ring append)"
obs_out=$(go test -run '^$' -bench 'BenchmarkSpanStartFinish$|BenchmarkStoreAppend$|BenchmarkStartRootMaybeUnsampled$|BenchmarkStartChildUnsampled$' -benchtime 0.2s ./internal/obs/trace/)
echo "$obs_out" | grep '^Benchmark'
echo "$obs_out" | awk '
    BEGIN { print "{" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ",\n"
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
    }
    END { print "\n}" }
' > BENCH_obs.json
echo "    wrote BENCH_obs.json"

echo "OK"
