#!/usr/bin/env bash
# Regenerates every artifact of the HOURS reproduction:
#   - the full test suite transcript        -> test_output.txt
#   - the benchmark transcript              -> bench_output.txt
#   - every paper figure/table + ablations  -> experiments_full.txt, results/*.csv
#
# Usage: scripts/reproduce.sh [scale]
#   scale defaults to 1.0 (the paper's published parameters; the
#   experiment pass takes a few minutes). Use e.g. 0.1 for a quick look.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"

echo "== build + vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "== experiments (scale ${SCALE}) =="
go run ./cmd/experiments -run all -scale "${SCALE}" -seed 1 -o results \
  2>&1 | tee experiments_full.txt

echo "done: test_output.txt bench_output.txt experiments_full.txt results/"
